//! Campaign specification, expansion, and resolution.
//!
//! A spec is a declarative description of a sweep: for each axis (simulator
//! preset, GPU, workload, per-simulation threads, scheduler override,
//! replacement-policy override) it lists the values to cover, and
//! [`CampaignSpec::expand`] takes the cartesian product in a fixed axis
//! order, so the job list — and every job's index — is deterministic.
//! [`CampaignSpec::resolve`] then loads each distinct GPU config and trace
//! once, applies knob overrides, and computes each job's stable cache key.

use crate::cache::CACHE_KEY_SCHEMA;
use crate::ENGINE_VERSION;
use std::fmt;
use std::sync::Arc;
use swiftsim_config::{fnv1a64, GpuConfig, ReplacementPolicy, SchedulerPolicy};
use swiftsim_core::{
    AluModelKind, FidelityConfig, FrontendModelKind, MemoryModelKind, SamplingPolicy,
    SimulatorPreset, SkipPolicy, RESULT_SCHEMA_VERSION,
};
use swiftsim_trace::{open_trace, TraceSource};
use swiftsim_workloads::Scale;

/// Error raised while parsing or resolving a campaign spec.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CampaignError {
    /// The spec text or field values are malformed.
    Spec(String),
    /// A GPU preset/config file could not be used.
    Gpu(String),
    /// A workload name or trace file could not be used.
    Workload(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Spec(m) => write!(f, "campaign spec: {m}"),
            CampaignError::Gpu(m) => write!(f, "campaign gpu: {m}"),
            CampaignError::Workload(m) => write!(f, "campaign workload: {m}"),
        }
    }
}

impl std::error::Error for CampaignError {}

/// Where a job's GPU configuration comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuSource {
    /// A built-in preset name (`rtx2080ti`, `rtx3060`, `rtx3090`).
    Preset(String),
    /// A `-key value` config file on disk.
    File(String),
}

impl GpuSource {
    fn describe(&self) -> &str {
        match self {
            GpuSource::Preset(name) | GpuSource::File(name) => name,
        }
    }
}

/// Where a job's application trace comes from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSource {
    /// A built-in synthetic workload, generated at the spec's scale.
    Builtin(String),
    /// A text or binary trace file on disk.
    TraceFile(String),
}

impl WorkloadSource {
    fn describe(&self) -> &str {
        match self {
            WorkloadSource::Builtin(name) | WorkloadSource::TraceFile(name) => name,
        }
    }
}

/// A declarative sweep: the cartesian product of every axis below.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignSpec {
    /// Campaign name (reports and JSONL rows carry it).
    pub name: String,
    /// Simulator presets to cover.
    pub presets: Vec<SimulatorPreset>,
    /// GPU configurations to cover.
    pub gpus: Vec<GpuSource>,
    /// Workloads/traces to cover.
    pub workloads: Vec<WorkloadSource>,
    /// Scale for built-in workloads.
    pub scale: Scale,
    /// Per-simulation worker threads (the SM-sharded parallelism *inside*
    /// one job; the campaign's own parallelism is across jobs). `0` means
    /// auto: resolved against this host's cores and each job's SM count
    /// during [`CampaignSpec::resolve`].
    pub threads: Vec<usize>,
    /// Warp-scheduler overrides; `None` keeps the config's own policy.
    pub schedulers: Vec<Option<SchedulerPolicy>>,
    /// L1 replacement-policy overrides; `None` keeps the config's own.
    pub replacements: Vec<Option<ReplacementPolicy>>,
    /// ALU-model overrides on top of the preset; `None` keeps the preset's.
    pub alu_models: Vec<Option<AluModelKind>>,
    /// Memory-model overrides on top of the preset; `None` keeps the
    /// preset's.
    pub mem_models: Vec<Option<MemoryModelKind>>,
    /// Frontend-model overrides on top of the preset; `None` keeps the
    /// preset's.
    pub frontends: Vec<Option<FrontendModelKind>>,
    /// Clock-advance (skip-policy) overrides; `None` keeps the preset's
    /// (event-driven everywhere).
    pub skips: Vec<Option<SkipPolicy>>,
    /// Kernel-launch sampling overrides; `None` keeps the preset's
    /// (sampling off everywhere). Sampling changes predicted cycles, so it
    /// is a real axis: it lands in the fidelity, the label, and the key.
    pub samplings: Vec<Option<SamplingPolicy>>,
    /// Self-profile every job (per-module wall-time attribution carried on
    /// each row). Deliberately *not* part of the job cache key: profiling
    /// observes the simulator without changing its predictions.
    pub profile: bool,
}

impl Default for CampaignSpec {
    fn default() -> Self {
        CampaignSpec {
            name: "campaign".to_owned(),
            presets: vec![SimulatorPreset::SwiftBasic],
            gpus: vec![GpuSource::Preset("rtx2080ti".to_owned())],
            workloads: Vec::new(),
            scale: Scale::Small,
            threads: vec![1],
            schedulers: vec![None],
            replacements: vec![None],
            alu_models: vec![None],
            mem_models: vec![None],
            frontends: vec![None],
            skips: vec![None],
            samplings: vec![None],
            profile: false,
        }
    }
}

/// One expanded job: a single simulation the campaign will run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Position in the deterministic expansion order.
    pub index: usize,
    /// Simulator preset.
    pub preset: SimulatorPreset,
    /// GPU source.
    pub gpu: GpuSource,
    /// Workload source.
    pub workload: WorkloadSource,
    /// Scale for built-in workloads.
    pub scale: Scale,
    /// Per-simulation worker threads.
    pub threads: usize,
    /// Warp-scheduler override.
    pub scheduler: Option<SchedulerPolicy>,
    /// Replacement-policy override.
    pub replacement: Option<ReplacementPolicy>,
    /// ALU-model override on top of the preset.
    pub alu: Option<AluModelKind>,
    /// Memory-model override on top of the preset.
    pub memory: Option<MemoryModelKind>,
    /// Frontend-model override on top of the preset.
    pub frontend: Option<FrontendModelKind>,
    /// Skip-policy override on top of the preset.
    pub skip: Option<SkipPolicy>,
    /// Sampling-policy override on top of the preset.
    pub sampling: Option<SamplingPolicy>,
}

impl JobSpec {
    /// Compact human-readable job label, e.g.
    /// `bfs/rtx2080ti/swift-sim-basic/t1/sched=gto`.
    pub fn label(&self) -> String {
        let mut label = format!(
            "{}/{}/{}/t{}",
            self.workload.describe(),
            self.gpu.describe(),
            self.preset.label(),
            self.threads
        );
        if let Some(s) = self.scheduler {
            label.push_str(&format!("/sched={s}"));
        }
        if let Some(r) = self.replacement {
            label.push_str(&format!("/repl={r}"));
        }
        if let Some(a) = self.alu {
            label.push_str(&format!("/alu={}", a.token()));
        }
        if let Some(m) = self.memory {
            label.push_str(&format!("/mem={}", m.token()));
        }
        if let Some(f) = self.frontend {
            label.push_str(&format!("/fe={}", f.token()));
        }
        if let Some(s) = self.skip {
            label.push_str(&format!("/skip={}", s.token()));
        }
        if let Some(s) = self.sampling {
            label.push_str(&format!("/samp={}", s.token()));
        }
        label
    }

    /// Serialize this job as a *single-job campaign spec* in the same
    /// `key = value` format [`CampaignSpec::parse`] reads.
    ///
    /// This is how a distributed scheduler ships one job to a remote
    /// worker: the worker parses and resolves the text with the exact
    /// machinery a local campaign uses, so it loads the same inputs,
    /// applies the same overrides, and — crucially — computes the same
    /// content-addressed cache key. Key agreement between shipper and
    /// worker is therefore a end-to-end determinism check.
    ///
    /// Every token round-trips: preset labels, policy names, and fidelity
    /// tokens are all accepted back by the parser. File-backed GPU configs
    /// and traces are shipped *by path* (a shared filesystem is assumed);
    /// paths containing `,` or `#` cannot be represented in the spec
    /// format and are rejected with `None`.
    pub fn to_single_spec_text(&self, name: &str) -> Option<String> {
        let mut text = format!("name = {name}\n");
        let path_ok = |p: &str| !p.contains(',') && !p.contains('#');
        match &self.gpu {
            GpuSource::Preset(n) => text.push_str(&format!("gpu = {n}\n")),
            GpuSource::File(p) => {
                if !path_ok(p) {
                    return None;
                }
                text.push_str(&format!("gpu-config = {p}\n"));
            }
        }
        match &self.workload {
            WorkloadSource::Builtin(n) => text.push_str(&format!("workload = {n}\n")),
            WorkloadSource::TraceFile(p) => {
                if !path_ok(p) {
                    return None;
                }
                text.push_str(&format!("trace = {p}\n"));
            }
        }
        let scale = match self.scale {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Paper => "paper",
        };
        text.push_str(&format!("scale = {scale}\n"));
        text.push_str(&format!("preset = {}\n", self.preset.label()));
        text.push_str(&format!("threads = {}\n", self.threads));
        if let Some(s) = self.scheduler {
            text.push_str(&format!("scheduler = {s}\n"));
        }
        if let Some(r) = self.replacement {
            text.push_str(&format!("replacement = {r}\n"));
        }
        if let Some(a) = self.alu {
            text.push_str(&format!("alu-model = {}\n", a.token()));
        }
        if let Some(m) = self.memory {
            text.push_str(&format!("mem-model = {}\n", m.token()));
        }
        if let Some(f) = self.frontend {
            text.push_str(&format!("frontend = {}\n", f.token()));
        }
        if let Some(s) = self.skip {
            text.push_str(&format!("skip = {}\n", s.token()));
        }
        if let Some(s) = self.sampling {
            text.push_str(&format!("sampling = {}\n", s.token()));
        }
        Some(text)
    }

    /// The job's resolved per-module fidelity: the preset's alias expanded,
    /// then any per-axis overrides applied on top.
    pub fn fidelity(&self) -> FidelityConfig {
        let mut fidelity = FidelityConfig::for_preset(self.preset);
        if let Some(a) = self.alu {
            fidelity.alu = a;
        }
        if let Some(m) = self.memory {
            fidelity.memory = m;
        }
        if let Some(f) = self.frontend {
            fidelity.frontend = f;
        }
        if let Some(s) = self.skip {
            fidelity.skip_policy = s;
        }
        if let Some(s) = self.sampling {
            fidelity.sampling = s;
        }
        fidelity
    }
}

/// A job with its inputs loaded and its cache key computed.
///
/// `spec.threads` is concrete here: a spec-level `threads = 0` (auto) is
/// resolved against this host and the job's GPU during
/// [`CampaignSpec::resolve`], so the cache key and label carry the count
/// that actually shards the simulation.
#[derive(Clone)]
pub struct ResolvedJob {
    /// The expanded job description (threads resolved to a concrete count).
    pub spec: JobSpec,
    /// GPU configuration with knob overrides applied.
    pub cfg: GpuConfig,
    /// Resolved per-module fidelity (preset alias + per-axis overrides);
    /// the executor builds the simulator from this, and it is folded into
    /// [`ResolvedJob::key`].
    pub fidelity: FidelityConfig,
    /// The trace source (shared across jobs that use the same one).
    /// Built-in workloads are in-memory; trace files stream lazily.
    pub app: Arc<dyn TraceSource>,
    /// Content-addressed cache key.
    pub key: u64,
}

impl fmt::Debug for ResolvedJob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResolvedJob")
            .field("spec", &self.spec)
            .field("fidelity", &self.fidelity.describe())
            .field("cfg", &self.cfg.name)
            .field("app", &self.app.name())
            .field("key", &self.key_hex())
            .finish()
    }
}

impl ResolvedJob {
    /// The cache key as the 16-digit hex string used for file names and
    /// JSONL rows.
    pub fn key_hex(&self) -> String {
        format!("{:016x}", self.key)
    }
}

fn parse_list(value: &str) -> Vec<String> {
    value
        .split(',')
        .map(|v| v.trim().to_owned())
        .filter(|v| !v.is_empty())
        .collect()
}

fn parse_preset(s: &str) -> Result<SimulatorPreset, CampaignError> {
    match s {
        "detailed" | "accelsim" | "detailed-baseline" => Ok(SimulatorPreset::Detailed),
        "swift-basic" | "basic" | "swift-sim-basic" => Ok(SimulatorPreset::SwiftBasic),
        "swift-memory" | "memory" | "swift-sim-memory" => Ok(SimulatorPreset::SwiftMemory),
        other => Err(CampaignError::Spec(format!("unknown preset {other:?}"))),
    }
}

fn parse_override<T: std::str::FromStr>(s: &str, what: &str) -> Result<Option<T>, CampaignError> {
    if s == "default" {
        return Ok(None);
    }
    s.parse()
        .map(Some)
        .map_err(|_| CampaignError::Spec(format!("unknown {what} {s:?}")))
}

impl CampaignSpec {
    /// Parse the `key = value1, value2, ...` spec format.
    ///
    /// Recognized keys: `name`, `preset`, `gpu`, `gpu-config` (file paths),
    /// `workload`, `trace` (file paths), `scale`, `threads`, `scheduler`,
    /// `replacement`, `alu-model`, `mem-model`, `frontend`, `skip`,
    /// `sampling`, `profile` (`true`/`false`). `#` starts a comment;
    /// list-valued keys accumulate across repeated lines. Override lists
    /// (`scheduler`/`replacement`/`alu-model`/`mem-model`/`frontend`/`skip`/
    /// `sampling`) may include `default` to also cover the un-overridden
    /// configuration; the fidelity keys take the same tokens as the core
    /// parser (`analytical`, `cycle_accurate`, `analytical_reuse`,
    /// `detailed`, `simplified`, `dense`, `event_driven`, `off`,
    /// `cluster`, `cluster:N`).
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError::Spec`] on an unknown key or a malformed
    /// value.
    pub fn parse(text: &str) -> Result<CampaignSpec, CampaignError> {
        let mut spec = CampaignSpec::default();
        let mut gpus = Vec::new();
        let mut presets = Vec::new();
        let mut threads = Vec::new();
        let mut schedulers = Vec::new();
        let mut replacements = Vec::new();
        let mut alu_models = Vec::new();
        let mut mem_models = Vec::new();
        let mut frontends = Vec::new();
        let mut skips = Vec::new();
        let mut samplings = Vec::new();

        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let (key, value) = line.split_once('=').ok_or_else(|| {
                CampaignError::Spec(format!("line {}: expected `key = value`", lineno + 1))
            })?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "name" => spec.name = value.to_owned(),
                "preset" => {
                    for v in parse_list(value) {
                        presets.push(parse_preset(&v)?);
                    }
                }
                "gpu" => gpus.extend(parse_list(value).into_iter().map(GpuSource::Preset)),
                "gpu-config" => gpus.extend(parse_list(value).into_iter().map(GpuSource::File)),
                "workload" => spec
                    .workloads
                    .extend(parse_list(value).into_iter().map(WorkloadSource::Builtin)),
                "trace" => spec
                    .workloads
                    .extend(parse_list(value).into_iter().map(WorkloadSource::TraceFile)),
                "scale" => {
                    spec.scale = match value {
                        "tiny" => Scale::Tiny,
                        "small" => Scale::Small,
                        "paper" => Scale::Paper,
                        other => {
                            return Err(CampaignError::Spec(format!("unknown scale {other:?}")))
                        }
                    }
                }
                "threads" => {
                    for v in parse_list(value) {
                        threads.push(v.parse().map_err(|_| {
                            CampaignError::Spec(format!("invalid thread count {v:?}"))
                        })?);
                    }
                }
                "scheduler" => {
                    for v in parse_list(value) {
                        schedulers.push(parse_override::<SchedulerPolicy>(&v, "scheduler")?);
                    }
                }
                "replacement" => {
                    for v in parse_list(value) {
                        replacements.push(parse_override::<ReplacementPolicy>(
                            &v,
                            "replacement policy",
                        )?);
                    }
                }
                "alu-model" => {
                    for v in parse_list(value) {
                        alu_models.push(parse_override::<AluModelKind>(&v, "ALU model")?);
                    }
                }
                "mem-model" => {
                    for v in parse_list(value) {
                        mem_models.push(parse_override::<MemoryModelKind>(&v, "memory model")?);
                    }
                }
                "frontend" => {
                    for v in parse_list(value) {
                        frontends.push(parse_override::<FrontendModelKind>(&v, "frontend model")?);
                    }
                }
                "skip" => {
                    for v in parse_list(value) {
                        skips.push(parse_override::<SkipPolicy>(&v, "skip policy")?);
                    }
                }
                "sampling" => {
                    for v in parse_list(value) {
                        samplings.push(parse_override::<SamplingPolicy>(&v, "sampling policy")?);
                    }
                }
                "profile" => {
                    spec.profile = match value {
                        "true" | "on" | "1" => true,
                        "false" | "off" | "0" => false,
                        other => {
                            return Err(CampaignError::Spec(format!(
                                "invalid profile value {other:?} (expected true/false)"
                            )))
                        }
                    }
                }
                other => {
                    return Err(CampaignError::Spec(format!(
                        "line {}: unknown key {other:?}",
                        lineno + 1
                    )))
                }
            }
        }

        if !presets.is_empty() {
            spec.presets = presets;
        }
        if !gpus.is_empty() {
            spec.gpus = gpus;
        }
        if !threads.is_empty() {
            spec.threads = threads;
        }
        if !schedulers.is_empty() {
            spec.schedulers = schedulers;
        }
        if !replacements.is_empty() {
            spec.replacements = replacements;
        }
        if !alu_models.is_empty() {
            spec.alu_models = alu_models;
        }
        if !mem_models.is_empty() {
            spec.mem_models = mem_models;
        }
        if !frontends.is_empty() {
            spec.frontends = frontends;
        }
        if !skips.is_empty() {
            spec.skips = skips;
        }
        if !samplings.is_empty() {
            spec.samplings = samplings;
        }
        Ok(spec)
    }

    /// Expand the cartesian product into the deterministic job list.
    ///
    /// Axis order (outermost to innermost): GPU, workload, preset, threads,
    /// scheduler, replacement, ALU model, memory model, frontend, skip
    /// policy, sampling policy. The order — and therefore each job's
    /// `index` — depends only on the spec.
    pub fn expand(&self) -> Vec<JobSpec> {
        let mut jobs = Vec::new();
        for gpu in &self.gpus {
            for workload in &self.workloads {
                for &preset in &self.presets {
                    for &threads in &self.threads {
                        for &scheduler in &self.schedulers {
                            for &replacement in &self.replacements {
                                for &alu in &self.alu_models {
                                    for &memory in &self.mem_models {
                                        for &frontend in &self.frontends {
                                            for &skip in &self.skips {
                                                for &sampling in &self.samplings {
                                                    jobs.push(JobSpec {
                                                        index: jobs.len(),
                                                        preset,
                                                        gpu: gpu.clone(),
                                                        workload: workload.clone(),
                                                        scale: self.scale,
                                                        threads,
                                                        scheduler,
                                                        replacement,
                                                        alu,
                                                        memory,
                                                        frontend,
                                                        skip,
                                                        sampling,
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        jobs
    }

    /// Expand and resolve: load every distinct GPU config and trace once,
    /// apply knob overrides, and compute cache keys.
    ///
    /// # Errors
    ///
    /// Returns [`CampaignError`] when the sweep is empty, a preset name is
    /// unknown, or a config/trace file cannot be read.
    pub fn resolve(&self) -> Result<Vec<ResolvedJob>, CampaignError> {
        let jobs = self.expand();
        if jobs.is_empty() {
            return Err(CampaignError::Spec(
                "empty sweep: need at least one workload (and gpu/preset)".to_owned(),
            ));
        }

        // Load each distinct input once; jobs share them. The trace's
        // content hash rides along so it is computed once per trace, not
        // once per job (for file-backed sources it may touch the disk).
        let mut gpu_cache: Vec<(GpuSource, GpuConfig)> = Vec::new();
        let mut trace_cache: Vec<(WorkloadSource, Arc<dyn TraceSource>, u64)> = Vec::new();

        let mut resolved = Vec::with_capacity(jobs.len());
        for mut spec in jobs {
            let base = match gpu_cache.iter().find(|(s, _)| *s == spec.gpu) {
                Some((_, cfg)) => cfg.clone(),
                None => {
                    let cfg = load_gpu(&spec.gpu)?;
                    gpu_cache.push((spec.gpu.clone(), cfg.clone()));
                    cfg
                }
            };
            let (app, trace_hash) = match trace_cache.iter().find(|(s, _, _)| *s == spec.workload) {
                Some((_, app, hash)) => (Arc::clone(app), *hash),
                None => {
                    let app = load_trace(&spec.workload, spec.scale)?;
                    let hash = app.content_hash().map_err(|e| {
                        CampaignError::Workload(format!("{}: {e}", spec.workload.describe()))
                    })?;
                    trace_cache.push((spec.workload.clone(), Arc::clone(&app), hash));
                    (app, hash)
                }
            };

            let mut cfg = base;
            if let Some(s) = spec.scheduler {
                cfg.sm.scheduler = s;
            }
            if let Some(r) = spec.replacement {
                cfg.sm.l1d.replacement = r;
            }

            // `threads = 0` means auto: resolve it here, against this host
            // and this job's GPU, so the concrete count lands in the cache
            // key (sharding changes predicted cycles). Explicit counts are
            // validated now rather than failing the job mid-campaign.
            let num_sms = cfg.num_sms as usize;
            if spec.threads == 0 {
                spec.threads = swiftsim_core::max_threads().min(num_sms).max(1);
            } else if spec.threads > num_sms {
                return Err(CampaignError::Spec(format!(
                    "threads = {} exceeds the {} SMs of gpu {:?} (use threads = 0 for auto)",
                    spec.threads,
                    num_sms,
                    spec.gpu.describe(),
                )));
            }

            let fidelity = spec.fidelity();
            let key = job_key(&cfg, trace_hash, spec.preset, fidelity, spec.threads);
            resolved.push(ResolvedJob {
                spec,
                cfg,
                fidelity,
                app,
                key,
            });
        }
        Ok(resolved)
    }
}

/// Stable content-addressed key of one job.
///
/// Covers everything that determines the simulation's outcome: the resolved
/// configuration (overrides applied — via [`GpuConfig::stable_hash`]), the
/// trace content (`trace_hash` is [`TraceSource::content_hash`], which is
/// identical for the in-memory, text, and chunked-binary representation of
/// the same application), the preset, the resolved per-module fidelity
/// (overrides change predicted cycles), the per-simulation thread count
/// (sharding changes predicted cycles), and the engine/schema versions so
/// stale caches self-invalidate. The simulator code version
/// (`CARGO_PKG_VERSION`) and [`CACHE_KEY_SCHEMA`] are folded in too:
/// without them, results cached before a model change would be silently
/// served after it.
pub fn job_key(
    cfg: &GpuConfig,
    trace_hash: u64,
    preset: SimulatorPreset,
    fidelity: FidelityConfig,
    threads: usize,
) -> u64 {
    job_key_versioned(
        cfg,
        trace_hash,
        preset,
        fidelity,
        threads,
        env!("CARGO_PKG_VERSION"),
    )
}

/// [`job_key`] with the simulator version as an explicit input, so tests can
/// prove that a version bump invalidates cached entries.
fn job_key_versioned(
    cfg: &GpuConfig,
    trace_hash: u64,
    preset: SimulatorPreset,
    fidelity: FidelityConfig,
    threads: usize,
    pkg_version: &str,
) -> u64 {
    let descriptor = format!(
        "swiftsim-campaign;pkg={pkg_version};keyschema={CACHE_KEY_SCHEMA};\
         engine={ENGINE_VERSION};schema={RESULT_SCHEMA_VERSION};\
         cfg={:016x};trace={trace_hash:016x};preset={};fid={};threads={threads}",
        cfg.stable_hash(),
        preset.label(),
        fidelity.describe(),
    );
    fnv1a64(descriptor.as_bytes())
}

fn load_gpu(source: &GpuSource) -> Result<GpuConfig, CampaignError> {
    match source {
        GpuSource::Preset(name) => swiftsim_config::presets::by_name(name)
            .ok_or_else(|| CampaignError::Gpu(format!("unknown GPU preset {name:?}"))),
        GpuSource::File(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| CampaignError::Gpu(format!("cannot read {path}: {e}")))?;
            GpuConfig::parse(&text).map_err(|e| CampaignError::Gpu(format!("{path}: {e}")))
        }
    }
}

fn load_trace(
    source: &WorkloadSource,
    scale: Scale,
) -> Result<Arc<dyn TraceSource>, CampaignError> {
    match source {
        WorkloadSource::Builtin(name) => swiftsim_workloads::by_name(name)
            .map(|w| Arc::new(w.generate(scale)) as Arc<dyn TraceSource>)
            .ok_or_else(|| CampaignError::Workload(format!("unknown workload {name:?}"))),
        WorkloadSource::TraceFile(path) => open_trace(path)
            .map(Arc::from)
            .map_err(|e| CampaignError::Workload(e.to_string())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_full_spec() {
        let spec = CampaignSpec::parse(
            "# demo\n\
             name = dse\n\
             preset = swift-basic, swift-memory\n\
             gpu = rtx2080ti, rtx3060\n\
             workload = bfs, gemm   # two apps\n\
             scale = tiny\n\
             threads = 1, 2\n\
             scheduler = default, gto\n\
             replacement = lru\n\
             profile = true\n",
        )
        .unwrap();
        assert_eq!(spec.name, "dse");
        assert!(spec.profile);
        assert_eq!(spec.presets.len(), 2);
        assert_eq!(spec.gpus.len(), 2);
        assert_eq!(spec.workloads.len(), 2);
        assert_eq!(spec.scale, Scale::Tiny);
        assert_eq!(spec.threads, vec![1, 2]);
        assert_eq!(spec.schedulers, vec![None, Some(SchedulerPolicy::Gto)]);
        assert_eq!(spec.replacements, vec![Some(ReplacementPolicy::Lru)]);
        // 2 gpus x 2 workloads x 2 presets x 2 threads x 2 schedulers x 1.
        assert_eq!(spec.expand().len(), 32);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CampaignSpec::parse("bogus-key = 1").is_err());
        assert!(CampaignSpec::parse("no equals sign").is_err());
        assert!(CampaignSpec::parse("preset = warp9").is_err());
        assert!(CampaignSpec::parse("scale = huge").is_err());
        assert!(CampaignSpec::parse("threads = many").is_err());
        assert!(CampaignSpec::parse("scheduler = chaotic").is_err());
        assert!(CampaignSpec::parse("profile = maybe").is_err());
    }

    #[test]
    fn expansion_is_deterministic() {
        let spec = CampaignSpec::parse(
            "workload = bfs, nw\n\
             preset = swift-basic, swift-memory\n\
             scheduler = gto, lrr, two_level\n\
             scale = tiny\n",
        )
        .unwrap();
        let a = spec.expand();
        let b = spec.expand();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        assert_eq!(a[0].index, 0);
        assert!(a.windows(2).all(|w| w[0].index + 1 == w[1].index));
        // Axis order: workload is outer, preset next, scheduler innermost.
        assert_eq!(a[0].label(), "bfs/rtx2080ti/swift-sim-basic/t1/sched=gto");
        assert_eq!(a[1].label(), "bfs/rtx2080ti/swift-sim-basic/t1/sched=lrr");
        assert_eq!(a[3].label(), "bfs/rtx2080ti/swift-sim-memory/t1/sched=gto");
        assert_eq!(a[6].label(), "nw/rtx2080ti/swift-sim-basic/t1/sched=gto");
    }

    #[test]
    fn resolve_applies_overrides_and_shares_inputs() {
        let spec = CampaignSpec::parse(
            "workload = nw\n\
             scale = tiny\n\
             replacement = default, fifo\n",
        )
        .unwrap();
        let jobs = spec.resolve().unwrap();
        assert_eq!(jobs.len(), 2);
        assert_eq!(
            jobs[0].cfg.sm.l1d.replacement,
            swiftsim_config::presets::rtx2080ti().sm.l1d.replacement
        );
        assert_eq!(jobs[1].cfg.sm.l1d.replacement, ReplacementPolicy::Fifo);
        // The trace is loaded once and shared.
        assert!(Arc::ptr_eq(&jobs[0].app, &jobs[1].app));
        assert_ne!(jobs[0].key, jobs[1].key);
    }

    #[test]
    fn fidelity_axes_expand_and_resolve() {
        let spec = CampaignSpec::parse(
            "workload = nw\n\
             scale = tiny\n\
             preset = swift-basic\n\
             alu-model = default, cycle_accurate\n\
             skip = dense, event_driven\n",
        )
        .unwrap();
        let jobs = spec.resolve().unwrap();
        assert_eq!(jobs.len(), 4);

        // Innermost axis is the skip policy; ALU model varies outside it.
        assert_eq!(jobs[0].spec.alu, None);
        assert_eq!(jobs[0].spec.skip, Some(SkipPolicy::Dense));
        assert_eq!(jobs[1].spec.skip, Some(SkipPolicy::EventDriven));
        assert_eq!(jobs[2].spec.alu, Some(AluModelKind::CycleAccurate));

        // `default` keeps the preset's module choice; an override replaces
        // exactly one axis of the preset alias.
        assert_eq!(
            jobs[0].fidelity.alu,
            AluModelKind::Analytical,
            "swift-basic preset choice survives a `default` override"
        );
        assert_eq!(jobs[0].fidelity.skip_policy, SkipPolicy::Dense);
        assert_eq!(jobs[2].fidelity.alu, AluModelKind::CycleAccurate);
        assert_eq!(
            jobs[2].fidelity.memory,
            MemoryModelKind::CycleAccurate,
            "untouched axes keep the preset's choice"
        );

        // Overrides land in labels and distinguish cache keys.
        assert!(jobs[2].spec.label().contains("/alu=cycle_accurate"));
        assert!(jobs[0].spec.label().contains("/skip=dense"));
        let keys: std::collections::HashSet<u64> = jobs.iter().map(|j| j.key).collect();
        assert_eq!(keys.len(), 4, "every fidelity mix gets its own key");

        // Garbage fidelity tokens are rejected at parse time.
        assert!(CampaignSpec::parse("alu-model = quantum").is_err());
        assert!(CampaignSpec::parse("mem-model = psychic").is_err());
        assert!(CampaignSpec::parse("frontend = vibes").is_err());
        assert!(CampaignSpec::parse("skip = sometimes").is_err());
    }

    #[test]
    fn resolve_rejects_unknowns() {
        let empty = CampaignSpec::default();
        assert!(matches!(empty.resolve(), Err(CampaignError::Spec(_))));

        let spec = CampaignSpec::parse("workload = doom\nscale = tiny").unwrap();
        assert!(matches!(spec.resolve(), Err(CampaignError::Workload(_))));

        let spec = CampaignSpec::parse("workload = nw\ngpu = gtx9000").unwrap();
        assert!(matches!(spec.resolve(), Err(CampaignError::Gpu(_))));
    }

    #[test]
    fn threads_zero_resolves_to_concrete_count() {
        let spec = CampaignSpec::parse("workload = nw\nscale = tiny\nthreads = 0").unwrap();
        let jobs = spec.resolve().unwrap();
        assert!(jobs[0].spec.threads >= 1, "auto resolves to a real count");
        assert!(jobs[0].spec.threads <= jobs[0].cfg.num_sms as usize);
        // The resolved count is in the label (and therefore the key input).
        assert!(jobs[0]
            .spec
            .label()
            .contains(&format!("/t{}", jobs[0].spec.threads)));

        // Oversubscribing the GPU is rejected at resolve time.
        let spec = CampaignSpec::parse("workload = nw\nscale = tiny\nthreads = 4096").unwrap();
        assert!(matches!(spec.resolve(), Err(CampaignError::Spec(_))));
    }

    #[test]
    fn job_keys_are_stable_and_sensitive() {
        let spec = CampaignSpec::parse("workload = nw\nscale = tiny").unwrap();
        let first = spec.resolve().unwrap();
        let again = spec.resolve().unwrap();
        // Same spec, fresh resolution: identical keys.
        assert_eq!(first[0].key, again[0].key);

        // Any knob change produces a different key.
        let variants = [
            "workload = nw\nscale = tiny\nscheduler = lrr",
            "workload = nw\nscale = tiny\nreplacement = fifo",
            "workload = nw\nscale = tiny\nthreads = 2",
            "workload = nw\nscale = tiny\npreset = swift-memory",
            "workload = nw\nscale = tiny\ngpu = rtx3060",
            "workload = nw\nscale = small",
            "workload = bfs\nscale = tiny",
            "workload = nw\nscale = tiny\nalu-model = cycle_accurate",
            "workload = nw\nscale = tiny\nmem-model = analytical_reuse",
            "workload = nw\nscale = tiny\nfrontend = detailed",
            "workload = nw\nscale = tiny\nskip = dense",
        ];
        for text in variants {
            let other = CampaignSpec::parse(text).unwrap().resolve().unwrap();
            assert_ne!(first[0].key, other[0].key, "variant {text:?}");
        }
    }

    #[test]
    fn single_spec_text_round_trips_with_identical_keys() {
        // Every axis overridden at once: the serialized single-job spec
        // must resolve — on a "remote worker" with no shared state — to
        // the same label and the same content-addressed key.
        let spec = CampaignSpec::parse(
            "workload = nw, bfs\n\
             scale = tiny\n\
             gpu = rtx3060\n\
             preset = detailed-baseline, swift-sim-memory\n\
             threads = 2\n\
             scheduler = lrr\n\
             replacement = fifo\n\
             alu-model = cycle_accurate\n\
             mem-model = analytical_reuse\n\
             frontend = simplified\n\
             skip = dense\n",
        )
        .unwrap();
        let jobs = spec.resolve().unwrap();
        assert!(jobs.len() >= 2);
        for job in &jobs {
            let text = job.spec.to_single_spec_text("shipped").unwrap();
            let round = CampaignSpec::parse(&text).unwrap().resolve().unwrap();
            assert_eq!(round.len(), 1, "single-job spec expands to one job");
            assert_eq!(round[0].spec.label(), job.spec.label());
            assert_eq!(round[0].key, job.key, "worker computes the same key");
        }

        // Paths the spec format cannot carry are refused, not mangled.
        let mut bad = jobs[0].spec.clone();
        bad.workload = WorkloadSource::TraceFile("a,b.trace".to_owned());
        assert_eq!(bad.to_single_spec_text("x"), None);
    }

    #[test]
    fn job_key_misses_on_simulator_version_bump() {
        let spec = CampaignSpec::parse("workload = nw\nscale = tiny").unwrap();
        let job = spec.resolve().unwrap().into_iter().next().unwrap();

        let trace_hash = job.app.content_hash().unwrap();
        let current = job_key_versioned(
            &job.cfg,
            trace_hash,
            job.spec.preset,
            job.fidelity,
            job.spec.threads,
            env!("CARGO_PKG_VERSION"),
        );
        assert_eq!(current, job.key, "explicit-version path matches job_key");

        // A different simulator version must produce a different key, so
        // results cached before a release are never served after it.
        let bumped = job_key_versioned(
            &job.cfg,
            trace_hash,
            job.spec.preset,
            job.fidelity,
            job.spec.threads,
            "99.0.0-post-model-change",
        );
        assert_ne!(current, bumped);
    }
}
