//! Batched, cached, fault-isolated simulation sweeps.
//!
//! The headline use case of the Swift-Sim paper (§IV-B3) is design-space
//! exploration: thousands of *(GPU config × workload × simulator preset ×
//! knob)* simulations, each independent of the others. This crate is the
//! engine that runs such sweeps as first-class *campaigns*:
//!
//! * [`CampaignSpec`] declares the sweep — lists of presets, GPUs,
//!   workloads, thread counts, and knob overrides — and expands their
//!   cartesian product into a deterministic job list ([`CampaignSpec::expand`]).
//!   Specs can be built programmatically or parsed from a simple
//!   `key = v1, v2` text file ([`CampaignSpec::parse`]).
//! * [`run_campaign`] executes the jobs on a worker pool
//!   (`std::thread::scope`), *whole simulations in parallel* — orthogonal
//!   to `swiftsim-core`'s SM-sharded parallelism, which can still be used
//!   inside each job via the `threads` knob. A panicking or failing job is
//!   isolated ([`std::panic::catch_unwind`]), retried up to a bound, and
//!   reported as a failed row; the rest of the campaign completes.
//! * [`ResultCache`] memoizes finished jobs on disk, content-addressed by a
//!   stable hash of everything that determines the outcome: the resolved
//!   GPU configuration (knob overrides applied), the trace's content hash,
//!   the preset, and the thread count. Re-running a campaign after editing
//!   one knob re-simulates only the delta.
//! * [`CampaignReport`] carries one row per job and renders both the
//!   JSON-lines emission (sharing `SimulationResult::to_json`'s schema with
//!   `swiftsim --json`) and a `swiftsim-metrics` summary table.
//!
//! # Examples
//!
//! ```
//! use swiftsim_campaign::{CampaignOptions, CampaignSpec, run_campaign};
//!
//! let spec = CampaignSpec::parse(
//!     "name = demo\n\
//!      preset = swift-memory\n\
//!      workload = nw\n\
//!      scale = tiny\n\
//!      scheduler = gto, lrr\n",
//! )
//! .unwrap();
//! let report = run_campaign(&spec, &CampaignOptions::default().cache_off()).unwrap();
//! assert_eq!(report.rows.len(), 2);
//! assert_eq!(report.failed(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod executor;
mod report;
mod runner;
mod spec;

pub use cache::{CacheMode, ResultCache};
pub use executor::{
    run_jobs, run_jobs_cancellable, CancelToken, ExecutorOptions, JobOutcome, JobStatus,
};
pub use report::{CampaignReport, JobRow, RowStatus};
pub use runner::{JobRunner, StageTimings};
pub use spec::{CampaignError, CampaignSpec, GpuSource, JobSpec, ResolvedJob, WorkloadSource};

use std::path::PathBuf;

/// Bumped whenever the engine changes in a way that invalidates cached
/// results (job-key composition, result schema, simulator semantics).
/// Version 4: multi-threaded jobs moved from decoupled per-shard memory
/// slices to the two-phase engine over one shared memory system
/// (bit-identical to single-threaded under the default per-cycle
/// quantum), so cached multi-threaded rows no longer match what a rerun
/// produces. (Version 3: the event-driven cycle-skipping core replaced
/// the swift presets' stat-free idle jump. Version 2: trace content
/// hashes moved to the chunked-binary header scheme.)
pub const ENGINE_VERSION: u64 = 4;

/// How a campaign run executes: worker count, retry bound, cache policy.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Concurrent jobs (clamped to the job count; `0` means one worker per
    /// available CPU).
    pub workers: usize,
    /// Re-runs granted to a job that fails or panics.
    pub max_retries: u32,
    /// Cache policy.
    pub cache: CacheMode,
    /// Cache directory.
    pub cache_dir: PathBuf,
    /// Print one progress line per finished job to stderr.
    pub progress: bool,
    /// Self-profile every job, regardless of the spec's `profile` key.
    /// Profiled rows carry a per-module attribution summary in the JSONL
    /// emission.
    pub profile: bool,
    /// Checkpoint every job at kernel boundaries into this directory. A
    /// killed campaign rerun resumes each interrupted job from its last
    /// snapshot instead of restarting it (see [`JobRunner::with_checkpoint_dir`]).
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for CampaignOptions {
    fn default() -> Self {
        CampaignOptions {
            workers: 0,
            max_retries: 1,
            cache: CacheMode::Use,
            cache_dir: PathBuf::from("target/swiftsim-campaigns/cache"),
            progress: false,
            profile: false,
            checkpoint_dir: None,
        }
    }
}

impl CampaignOptions {
    /// Disable the result cache (neither read nor written).
    pub fn cache_off(mut self) -> Self {
        self.cache = CacheMode::Off;
        self
    }

    /// Ignore cached results but refresh them with this run's.
    pub fn refresh(mut self) -> Self {
        self.cache = CacheMode::Refresh;
        self
    }

    /// Set the worker count.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }
}

/// Expand, resolve, and execute a campaign.
///
/// Jobs run on a worker pool; each is checked against the cache first, and
/// failures (errors or panics) are confined to their row.
///
/// # Errors
///
/// Returns [`CampaignError`] when the spec itself is unusable (unknown
/// workload or GPU preset, unreadable config/trace file, empty sweep).
/// Individual job failures do *not* error: they are reported as
/// [`RowStatus::Failed`] rows.
pub fn run_campaign(
    spec: &CampaignSpec,
    opts: &CampaignOptions,
) -> Result<CampaignReport, CampaignError> {
    let jobs = spec.resolve()?;
    let cache = ResultCache::new(opts.cache_dir.clone(), opts.cache);
    let exec_opts = ExecutorOptions {
        workers: opts.workers,
        max_retries: opts.max_retries,
        progress: opts.progress,
        // Interactive runs (progress on) also get a liveness line while
        // long jobs are still simulating.
        heartbeat: opts.progress.then(|| std::time::Duration::from_secs(10)),
        profile: opts.profile || spec.profile,
    };
    let mut runner = JobRunner::new(exec_opts, cache);
    if let Some(dir) = &opts.checkpoint_dir {
        runner = runner.with_checkpoint_dir(dir.clone());
    }
    let outcomes = runner.run(&jobs, &CancelToken::new());
    Ok(CampaignReport::from_outcomes(
        spec.name.clone(),
        jobs,
        outcomes,
    ))
}
