//! Content-addressed on-disk result cache.
//!
//! Every finished job is stored as `<key>.json` under the cache directory,
//! where `<key>` is the job's stable content hash (see
//! [`crate::spec::job_key`]). Because the key covers the resolved config,
//! the trace content, the preset, and the thread count, a lookup can never
//! return a result computed from different inputs — editing one knob moves
//! the affected jobs to new keys and only those are re-simulated.

use std::path::PathBuf;
use swiftsim_core::SimulationResult;
use swiftsim_metrics::Json;

/// Cache key derivation schema.
///
/// Folded into every job key alongside the crate version (see
/// [`crate::spec::job_key`]), so cached results are invalidated both on
/// release bumps and — by bumping this constant — on model changes that
/// alter simulated outcomes without touching the key's other inputs.
pub const CACHE_KEY_SCHEMA: u64 = 1;

/// Cache policy for one campaign run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheMode {
    /// Read hits, write misses (the default).
    Use,
    /// Ignore existing entries but overwrite them with this run's results.
    Refresh,
    /// Neither read nor write.
    Off,
}

/// The on-disk cache.
#[derive(Debug, Clone)]
pub struct ResultCache {
    dir: PathBuf,
    mode: CacheMode,
}

impl ResultCache {
    /// A cache rooted at `dir` with the given policy. The directory is
    /// created lazily on first store.
    pub fn new(dir: PathBuf, mode: CacheMode) -> Self {
        ResultCache { dir, mode }
    }

    /// The active policy.
    pub fn mode(&self) -> CacheMode {
        self.mode
    }

    fn path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("{key:016x}.json"))
    }

    /// Look up a finished result. Returns `None` on policy
    /// ([`CacheMode::Refresh`]/[`CacheMode::Off`]), a missing entry, or an
    /// unreadable/stale-schema entry (corrupt files are treated as misses,
    /// never as errors).
    pub fn lookup(&self, key: u64) -> Option<SimulationResult> {
        if self.mode != CacheMode::Use {
            return None;
        }
        let text = std::fs::read_to_string(self.path(key)).ok()?;
        let json = Json::parse(&text).ok()?;
        // Entries are self-describing: verify the key field to guard
        // against a file renamed or copied into the wrong slot.
        if json.get("key").and_then(Json::as_str) != Some(format!("{key:016x}").as_str()) {
            return None;
        }
        SimulationResult::from_json(json.get("result")?).ok()
    }

    /// Store a finished result (no-op under [`CacheMode::Off`]). Write
    /// failures are swallowed: a broken cache must not fail the campaign.
    pub fn store(&self, key: u64, label: &str, result: &SimulationResult) {
        if self.mode == CacheMode::Off {
            return;
        }
        let _ = std::fs::create_dir_all(&self.dir);
        let entry = Json::obj(vec![
            ("key", Json::str(format!("{key:016x}"))),
            ("label", Json::str(label)),
            ("result", result.to_json()),
        ]);
        // Write-then-rename so concurrent campaigns never observe a
        // half-written entry.
        let tmp = self
            .dir
            .join(format!("{key:016x}.tmp.{}", std::process::id()));
        if std::fs::write(&tmp, entry.dump() + "\n").is_ok() {
            let _ = std::fs::rename(&tmp, self.path(key));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_core::{KernelResult, SimulationResult};

    fn scratch_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("swiftsim-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample(cycles: u64) -> SimulationResult {
        SimulationResult {
            app: "nw".into(),
            simulator: "s".into(),
            fidelity: swiftsim_core::FidelityConfig::default(),
            cycles,
            kernels: vec![KernelResult {
                name: "k".into(),
                cycles,
                instructions: 10,
                blocks: 1,
            }],
            metrics: swiftsim_metrics::MetricsCollector::new(),
            wall_time: std::time::Duration::from_micros(5),
            confidence: None,
            profile: None,
        }
    }

    #[test]
    fn store_then_lookup_round_trips() {
        let dir = scratch_dir("roundtrip");
        let cache = ResultCache::new(dir.clone(), CacheMode::Use);
        assert!(cache.lookup(7).is_none(), "empty cache misses");
        cache.store(7, "job", &sample(123));
        assert_eq!(cache.lookup(7).unwrap().cycles, 123);
        assert!(cache.lookup(8).is_none(), "other keys still miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_ignores_but_overwrites() {
        let dir = scratch_dir("refresh");
        let cache = ResultCache::new(dir.clone(), CacheMode::Use);
        cache.store(1, "job", &sample(100));

        let refresh = ResultCache::new(dir.clone(), CacheMode::Refresh);
        assert!(refresh.lookup(1).is_none(), "refresh never reads");
        refresh.store(1, "job", &sample(200));
        assert_eq!(cache.lookup(1).unwrap().cycles, 200, "but it writes");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn off_neither_reads_nor_writes() {
        let dir = scratch_dir("off");
        let off = ResultCache::new(dir.clone(), CacheMode::Off);
        off.store(1, "job", &sample(100));
        assert!(!dir.exists(), "Off must not touch the filesystem");
        let on = ResultCache::new(dir.clone(), CacheMode::Use);
        assert!(on.lookup(1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn pre_confidence_schema_entries_are_misses() {
        // Regression: schema-3 entries predate the `confidence` block, so
        // they cannot state whether their numbers came from a sampled run.
        // Serving one as a hit would silently mix error-bounded results
        // into exact sweeps — it must be re-simulated instead.
        let dir = scratch_dir("stale-schema");
        let cache = ResultCache::new(dir.clone(), CacheMode::Use);
        cache.store(12, "job", &sample(77));
        let path = dir.join(format!("{:016x}.json", 12u64));
        let current = format!("\"schema\":{}", swiftsim_core::RESULT_SCHEMA_VERSION);
        let downgraded = std::fs::read_to_string(&path)
            .unwrap()
            .replace(&current, "\"schema\":3");
        assert!(downgraded.contains("\"schema\":3"), "{downgraded}");
        std::fs::write(&path, downgraded).unwrap();
        assert!(cache.lookup(12).is_none(), "stale schema must miss");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_misses() {
        let dir = scratch_dir("corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let cache = ResultCache::new(dir.clone(), CacheMode::Use);
        std::fs::write(dir.join(format!("{:016x}.json", 9u64)), "not json").unwrap();
        assert!(cache.lookup(9).is_none());
        // An entry stored under the wrong key is also rejected.
        cache.store(10, "job", &sample(1));
        std::fs::rename(
            dir.join(format!("{:016x}.json", 10u64)),
            dir.join(format!("{:016x}.json", 11u64)),
        )
        .unwrap();
        assert!(cache.lookup(11).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
