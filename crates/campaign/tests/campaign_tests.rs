//! End-to-end campaign tests: the acceptance scenario of the campaign
//! subsystem — a ≥24-job sweep that caches, isolates failures, and runs
//! jobs in parallel.

use std::path::PathBuf;
use swiftsim_campaign::{
    run_campaign, CampaignOptions, CampaignSpec, ExecutorOptions, JobRow, RowStatus,
};

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("swiftsim-campaign-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// 2 workloads × 2 presets × 3 schedulers × 2 replacement policies = 24.
const SWEEP: &str = "name = acceptance\n\
                     workload = nw, bfs\n\
                     preset = swift-basic, swift-memory\n\
                     scheduler = gto, lrr, two_level\n\
                     replacement = lru, fifo\n\
                     scale = tiny\n";

fn options(dir: &std::path::Path) -> CampaignOptions {
    let mut opts = CampaignOptions::default().workers(2);
    opts.cache_dir = dir.to_path_buf();
    opts
}

#[test]
fn sweep_runs_then_fully_caches_then_resimulates_only_the_delta() {
    let dir = scratch_dir("cache");
    let spec = CampaignSpec::parse(SWEEP).unwrap();

    // First invocation: everything simulates.
    let first = run_campaign(&spec, &options(&dir)).unwrap();
    assert_eq!(first.rows.len(), 24);
    assert_eq!(first.completed(), 24, "{}", first.summary_line());
    assert_eq!(first.failed(), 0);

    // Second invocation: every unchanged job is a cache hit.
    let second = run_campaign(&spec, &options(&dir)).unwrap();
    assert_eq!(second.cached(), 24, "{}", second.summary_line());
    assert_eq!(second.completed(), 0);
    // Cached rows carry the same simulated cycles as the original run.
    for (a, b) in first.rows.iter().zip(&second.rows) {
        assert_eq!(
            a.result.as_ref().unwrap().cycles,
            b.result.as_ref().unwrap().cycles,
            "{}",
            a.label
        );
    }

    // Widening one axis re-simulates only the new combinations.
    let wider = CampaignSpec::parse(
        &SWEEP.replace("replacement = lru, fifo", "replacement = lru, fifo, random"),
    )
    .unwrap();
    let third = run_campaign(&wider, &options(&dir)).unwrap();
    assert_eq!(third.rows.len(), 36);
    assert_eq!(third.cached(), 24, "{}", third.summary_line());
    assert_eq!(third.completed(), 12, "only the random-policy delta runs");

    // --refresh ignores all 36 entries and re-simulates.
    let refreshed = run_campaign(&wider, &options(&dir).refresh()).unwrap();
    assert_eq!(refreshed.cached(), 0);
    assert_eq!(refreshed.completed(), 36);

    // --no-cache never reads nor writes.
    let no_cache_dir = scratch_dir("no-cache");
    let uncached = run_campaign(&spec, &options(&no_cache_dir).cache_off()).unwrap();
    assert_eq!(uncached.completed(), 24);
    assert!(!no_cache_dir.exists());

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_failing_job_is_reported_without_aborting_the_campaign() {
    let dir = scratch_dir("fault");
    // A trace whose single block wants more shared memory than any SM has:
    // the simulator rejects it with SimError::BlockTooLarge at run time.
    let bad_trace = dir.join("impossible.sstrace");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(
        &bad_trace,
        "app impossible\n\
         kernel k\n\
         grid 1 1 1\n\
         block 32 1 1\n\
         shmem 16777216\n\
         regs 32\n\
         block_begin\n\
         warp_begin\n\
         0000 IADD D:R1 S:R2 S:R3 M:ffffffff\n\
         warp_end\n\
         block_end\n\
         kernel_end\n",
    )
    .unwrap();

    let spec = CampaignSpec::parse(&format!(
        "workload = nw\n\
         trace = {}\n\
         scheduler = gto, lrr, two_level\n\
         scale = tiny\n",
        bad_trace.display()
    ))
    .unwrap();

    let mut opts = options(&dir).cache_off();
    opts.max_retries = 1;
    let report = run_campaign(&spec, &opts).unwrap();
    assert_eq!(report.rows.len(), 6);
    assert_eq!(report.failed(), 3, "{}", report.summary_line());
    assert_eq!(report.completed(), 3, "the good jobs all finish");
    let failed: Vec<&JobRow> = report
        .rows
        .iter()
        .filter(|r| r.status == RowStatus::Failed)
        .collect();
    for row in failed {
        assert_eq!(row.workload, bad_trace.display().to_string());
        let err = row.error.as_ref().unwrap();
        assert!(err.contains("shared memory"), "{err}");
        assert_eq!(row.attempts, 2, "initial attempt + 1 retry");
        assert!(row.result.is_none());
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn a_panicking_job_is_isolated_even_under_the_pool() {
    // The engine's pool-level guarantee, exercised through the public
    // generic executor with a deliberately panicking runner mixed into a
    // 24-job batch.
    let jobs: Vec<usize> = (0..24).collect();
    let runs = swiftsim_campaign::run_jobs(
        &jobs,
        &ExecutorOptions {
            workers: 4,
            max_retries: 0,
            ..ExecutorOptions::default()
        },
        |j| format!("job{j}"),
        |_, &j| {
            if j == 7 {
                panic!("injected campaign panic");
            }
            Ok(j)
        },
    );
    assert_eq!(runs.len(), 24);
    for (j, run) in runs.iter().enumerate() {
        if j == 7 {
            assert!(run.result.as_ref().unwrap_err().contains("injected"));
        } else {
            assert_eq!(*run.result.as_ref().unwrap(), j);
        }
    }
}

#[test]
fn jsonl_rows_share_the_single_run_schema() {
    let dir = scratch_dir("jsonl");
    let spec = CampaignSpec::parse("workload = nw\nscale = tiny\n").unwrap();
    let report = run_campaign(&spec, &options(&dir).cache_off()).unwrap();
    let jsonl = report.to_jsonl();
    assert_eq!(jsonl.lines().count(), 1);

    let row = swiftsim_metrics::Json::parse(jsonl.lines().next().unwrap()).unwrap();
    assert_eq!(
        row.get("status").and_then(swiftsim_metrics::Json::as_str),
        Some("ok")
    );
    // The embedded result parses back through the shared schema.
    let result = swiftsim_core::SimulationResult::from_json(row.get("result").unwrap()).unwrap();
    assert_eq!(result.app, "nw");
    assert!(result.cycles > 0);
    assert_eq!(
        Some(result.cycles),
        report.rows[0].result.as_ref().map(|r| r.cycles)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
