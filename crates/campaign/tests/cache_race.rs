//! Concurrent result-cache writers in *separate processes* — the scenario
//! the write-then-rename protocol in `ResultCache::store` exists for.
//!
//! Several `swiftsim campaign` runs (or a serve daemon plus a one-shot
//! campaign) may share one cache directory and finish the same job at the
//! same time. The invariant is not "last writer wins" but "no reader ever
//! observes a torn entry": every lookup must return either a complete,
//! self-consistent result written by *some* writer, or (before the first
//! write lands) a clean miss.
//!
//! The test re-executes its own binary as writer children, so the races
//! are real OS-level ones across process boundaries — in-process threads
//! would share the same pid and miss the tmp-file naming scheme entirely.

use std::path::PathBuf;
use std::process::Command;
use std::time::{Duration, Instant};
use swiftsim_campaign::{CacheMode, ResultCache};
use swiftsim_core::{KernelResult, SimulationResult};

const KEY: u64 = 0xfeed_beef_cafe_0042;
const WRITERS: usize = 6;
const STORES_PER_WRITER: u64 = 150;

/// A result whose `cycles` encodes which writer produced it, so readers
/// can verify an entry is internally consistent (not spliced from two
/// writers' bytes).
fn stamped(seed: u64) -> SimulationResult {
    SimulationResult {
        app: format!("race-app-{seed}"),
        simulator: "race-sim".into(),
        fidelity: swiftsim_core::FidelityConfig::default(),
        cycles: 1_000_000 + seed,
        kernels: vec![KernelResult {
            name: format!("k{seed}"),
            cycles: 1_000_000 + seed,
            instructions: 10,
            blocks: 1,
        }],
        metrics: swiftsim_metrics::MetricsCollector::new(),
        wall_time: Duration::from_micros(5),
        confidence: None,
        profile: None,
    }
}

/// An entry is consistent iff all its seed-stamped fields agree.
fn seed_of(result: &SimulationResult) -> Option<u64> {
    let seed = result.cycles.checked_sub(1_000_000)?;
    let same_app = result.app == format!("race-app-{seed}");
    let same_kernel = result.kernels.len() == 1
        && result.kernels[0].name == format!("k{seed}")
        && result.kernels[0].cycles == result.cycles;
    (same_app && same_kernel && seed < WRITERS as u64).then_some(seed)
}

fn writer_main(dir: PathBuf, seed: u64) {
    let cache = ResultCache::new(dir, CacheMode::Use);
    let result = stamped(seed);
    for _ in 0..STORES_PER_WRITER {
        cache.store(KEY, "race", &result);
        // Read back under fire from the other writers: a miss here would
        // mean a reader can observe the entry mid-replacement.
        let read = cache
            .lookup(KEY)
            .expect("entry vanished or tore mid-replacement");
        assert!(seed_of(&read).is_some(), "torn entry: {}", read.app);
    }
}

#[test]
fn concurrent_process_writers_never_tear_the_same_key() {
    // Child mode: this very test, re-invoked with role=writer.
    if let Ok(seed) = std::env::var("SWIFTSIM_CACHE_RACE_SEED") {
        let dir = PathBuf::from(std::env::var("SWIFTSIM_CACHE_RACE_DIR").unwrap());
        writer_main(dir, seed.parse().unwrap());
        return;
    }

    let dir = std::env::temp_dir().join(format!("swiftsim-cache-race-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let exe = std::env::current_exe().unwrap();
    let mut children = Vec::new();
    for seed in 0..WRITERS as u64 {
        let child = Command::new(&exe)
            .args([
                "--exact",
                "concurrent_process_writers_never_tear_the_same_key",
                "--test-threads",
                "1",
                "--nocapture",
            ])
            .env("SWIFTSIM_CACHE_RACE_DIR", &dir)
            .env("SWIFTSIM_CACHE_RACE_SEED", seed.to_string())
            .spawn()
            .expect("spawn writer child");
        children.push(child);
    }

    // Read continuously while the writers fight. After the first write
    // lands, every lookup must succeed and be internally consistent.
    let cache = ResultCache::new(dir.clone(), CacheMode::Use);
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut established = false;
    let mut observed = 0u64;
    while children
        .iter_mut()
        .any(|c| matches!(c.try_wait(), Ok(None)))
    {
        assert!(Instant::now() < deadline, "writers wedged");
        match cache.lookup(KEY) {
            Some(result) => {
                assert!(
                    seed_of(&result).is_some(),
                    "reader observed a torn entry: app={} cycles={}",
                    result.app,
                    result.cycles
                );
                established = true;
                observed += 1;
            }
            None => assert!(!established, "entry vanished after being established"),
        }
    }

    for mut child in children {
        let status = child.wait().unwrap();
        assert!(status.success(), "a writer child failed: {status}");
    }
    assert!(established, "no write was ever observed");
    assert!(observed > 0);

    // Quiesced: exactly one winner, readable, consistent, and no stray
    // tmp files left behind by the rename protocol.
    let final_read = cache.lookup(KEY).expect("final entry readable");
    assert!(seed_of(&final_read).is_some());
    let leftovers: Vec<_> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .filter(|n| n.contains(".tmp."))
        .collect();
    assert!(leftovers.is_empty(), "stray tmp files: {leftovers:?}");
    let _ = std::fs::remove_dir_all(&dir);
}
