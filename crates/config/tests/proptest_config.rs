// The property-based suite needs the external `proptest` crate, which is
// unavailable in offline builds. Enable the crate's non-default `proptest`
// feature (after restoring the dev-dependency in Cargo.toml and the
// workspace manifest) to run it.
#![cfg(feature = "proptest")]

//! Property-based tests: arbitrary valid configurations survive the
//! config-file round trip, and validation invariants hold.

use proptest::prelude::*;
use swiftsim_config::{presets, GpuConfig, ReplacementPolicy, SchedulerPolicy};

fn arb_config() -> impl Strategy<Value = GpuConfig> {
    (
        1u32..128,                                            // num_sms
        prop::sample::select(vec![1u32, 2, 4, 8]),            // sub_cores
        prop::sample::select(vec![32u32, 64, 128, 256, 512]), // l1 sets
        1u32..17,                                             // l1 ways
        prop::sample::select(vec![
            SchedulerPolicy::Gto,
            SchedulerPolicy::Lrr,
            SchedulerPolicy::TwoLevel,
        ]),
        prop::sample::select(vec![
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ]),
        1u32..33,  // partitions
        1u32..512, // dram latency
    )
        .prop_map(
            |(num_sms, sub_cores, l1_sets, l1_ways, sched, repl, partitions, dram_latency)| {
                let mut cfg = presets::rtx2080ti();
                cfg.name = format!("prop-gpu-{num_sms}-{l1_sets}");
                cfg.num_sms = num_sms;
                cfg.sm.sub_cores = sub_cores;
                cfg.sm.l1d.sets = l1_sets;
                cfg.sm.l1d.ways = l1_ways;
                cfg.sm.scheduler = sched;
                cfg.sm.l1d.replacement = repl;
                cfg.memory.partitions = partitions;
                cfg.memory.dram_latency = dram_latency;
                cfg
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn valid_configs_round_trip(cfg in arb_config()) {
        prop_assert!(cfg.validate().is_ok());
        let text = cfg.to_config_text();
        let back = GpuConfig::parse(&text).expect("round trip");
        prop_assert_eq!(back, cfg);
    }

    #[test]
    fn cuda_cores_scale_with_sms(cfg in arb_config()) {
        // CUDA cores = SP lanes × sub-cores × SMs, always.
        let per_sm = cfg.sm.exec_unit(swiftsim_config::ExecUnitKind::Sp).lanes * cfg.sm.sub_cores;
        prop_assert_eq!(cfg.cuda_cores(), per_sm * cfg.num_sms);
    }

    #[test]
    fn capacity_math_is_consistent(cfg in arb_config()) {
        let l1 = &cfg.sm.l1d;
        prop_assert_eq!(
            l1.capacity_bytes(),
            u64::from(l1.sets) * u64::from(l1.ways) * u64::from(l1.line_bytes)
        );
        prop_assert_eq!(
            cfg.memory.l2_capacity_bytes(),
            cfg.memory.l2.capacity_bytes() * u64::from(cfg.memory.partitions)
        );
        prop_assert_eq!(l1.sectors_per_line(), l1.line_bytes / l1.sector_bytes);
    }

    /// Corrupting any single numeric value to zero is caught by validation
    /// or the parser (no silent acceptance of nonsense configs).
    #[test]
    fn zeroed_fields_are_rejected(which in 0usize..6) {
        let mut cfg = presets::rtx3060();
        match which {
            0 => cfg.num_sms = 0,
            1 => cfg.sm.sub_cores = 0,
            2 => cfg.sm.l1d.ways = 0,
            3 => cfg.memory.partitions = 0,
            4 => cfg.memory.dram_latency = 0,
            _ => cfg.noc.latency = 0,
        }
        prop_assert!(cfg.validate().is_err());
        prop_assert!(GpuConfig::parse(&cfg.to_config_text()).is_err());
    }
}
