//! Stable content hashing for configurations.
//!
//! The campaign engine keys its on-disk result cache by the *content* of
//! everything that determines a simulation's outcome. `DefaultHasher` is
//! explicitly unstable across releases, so cache keys use FNV-1a over a
//! canonical serialization instead: the key survives recompilation and
//! toolchain upgrades, and changes exactly when a parameter changes.

use crate::arch::GpuConfig;

/// 64-bit FNV-1a over a byte string. Stable forever by definition.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl GpuConfig {
    /// Stable hash of the full configuration.
    ///
    /// Defined as FNV-1a over [`GpuConfig::to_config_text`], the canonical
    /// `-key value` serialization, so two configs hash equal exactly when
    /// they would round-trip to the same file — including the GPU name and
    /// every cache, SM, NoC, and memory parameter.
    pub fn stable_hash(&self) -> u64 {
        fnv1a64(self.to_config_text().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn equal_configs_hash_equal() {
        assert_eq!(
            presets::rtx2080ti().stable_hash(),
            presets::rtx2080ti().stable_hash()
        );
    }

    #[test]
    fn any_knob_change_changes_the_hash() {
        let base = presets::rtx2080ti();
        let mut l1 = base.clone();
        l1.sm.l1d.ways *= 2;
        let mut sched = base.clone();
        sched.sm.scheduler = crate::SchedulerPolicy::Lrr;
        let mut sms = base.clone();
        sms.num_sms -= 1;
        let hashes = [
            base.stable_hash(),
            l1.stable_hash(),
            sched.stable_hash(),
            sms.stable_hash(),
            presets::rtx3060().stable_hash(),
            presets::rtx3090().stable_hash(),
        ];
        for (i, a) in hashes.iter().enumerate() {
            for b in &hashes[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
