//! Typed GPU architecture description.
//!
//! The modeled architecture follows §II-A / Fig. 1 of the paper: a GPU is a
//! set of streaming multiprocessors (SMs), each made of several sub-cores
//! (warp scheduler + register file + execution units + LD/ST units) that
//! share a sectored L1 data cache and shared memory; the SMs share a banked
//! L2 cache reached over an on-chip interconnect, and L2 misses go to DRAM.

use crate::error::ConfigError;
use std::fmt;

/// Warp scheduling policy used by *Warp Scheduler & Dispatch* (§III-B1).
///
/// The scheduler is the paper's working example of a "module of interest":
/// it is simulated cycle-accurately in every preset so new scheduling
/// algorithms can be evaluated faithfully.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SchedulerPolicy {
    /// Greedy-then-oldest: keep issuing from the current warp until it
    /// stalls, then switch to the oldest ready warp. The RTX 2080 Ti
    /// configuration in Table II uses GTO.
    #[default]
    Gto,
    /// Loose round-robin over ready warps.
    Lrr,
    /// Two-level scheduler: a small active set is scheduled round-robin and
    /// refilled from a pending set when warps stall on long-latency events.
    TwoLevel,
}

impl fmt::Display for SchedulerPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchedulerPolicy::Gto => f.write_str("gto"),
            SchedulerPolicy::Lrr => f.write_str("lrr"),
            SchedulerPolicy::TwoLevel => f.write_str("two_level"),
        }
    }
}

impl std::str::FromStr for SchedulerPolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "gto" => Ok(SchedulerPolicy::Gto),
            "lrr" => Ok(SchedulerPolicy::Lrr),
            "two_level" => Ok(SchedulerPolicy::TwoLevel),
            other => Err(ConfigError::invalid_value("scheduler policy", other)),
        }
    }
}

/// Cache replacement policy.
///
/// The paper motivates cycle-accurate cache modeling precisely because
/// analytical reuse-distance models "typically assume that the cache
/// replacement policy is LRU" (§II-B); the cycle-accurate cache in
/// `swiftsim-mem` supports all three.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// Least-recently-used.
    #[default]
    Lru,
    /// First-in first-out.
    Fifo,
    /// Pseudo-random victim selection.
    Random,
}

impl fmt::Display for ReplacementPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplacementPolicy::Lru => f.write_str("lru"),
            ReplacementPolicy::Fifo => f.write_str("fifo"),
            ReplacementPolicy::Random => f.write_str("random"),
        }
    }
}

impl std::str::FromStr for ReplacementPolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "lru" => Ok(ReplacementPolicy::Lru),
            "fifo" => Ok(ReplacementPolicy::Fifo),
            "random" => Ok(ReplacementPolicy::Random),
            other => Err(ConfigError::invalid_value("replacement policy", other)),
        }
    }
}

/// Cache write-hit policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheWritePolicy {
    /// Writes update the cache and are forwarded to the next level
    /// immediately (the RTX 2080 Ti L1 in Table II).
    #[default]
    WriteThrough,
    /// Writes mark the line dirty; dirty lines are written back on eviction
    /// (the L2 in Table II).
    WriteBack,
}

impl fmt::Display for CacheWritePolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheWritePolicy::WriteThrough => f.write_str("write_through"),
            CacheWritePolicy::WriteBack => f.write_str("write_back"),
        }
    }
}

impl std::str::FromStr for CacheWritePolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "write_through" => Ok(CacheWritePolicy::WriteThrough),
            "write_back" => Ok(CacheWritePolicy::WriteBack),
            other => Err(ConfigError::invalid_value("write policy", other)),
        }
    }
}

/// Cache write-miss allocation policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CacheWriteAllocate {
    /// Write misses do not allocate a line (write-around / no-write-allocate).
    #[default]
    NoWriteAllocate,
    /// Write misses fetch and allocate the line.
    WriteAllocate,
}

impl fmt::Display for CacheWriteAllocate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheWriteAllocate::NoWriteAllocate => f.write_str("no_write_allocate"),
            CacheWriteAllocate::WriteAllocate => f.write_str("write_allocate"),
        }
    }
}

impl std::str::FromStr for CacheWriteAllocate {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "no_write_allocate" => Ok(CacheWriteAllocate::NoWriteAllocate),
            "write_allocate" => Ok(CacheWriteAllocate::WriteAllocate),
            other => Err(ConfigError::invalid_value("write allocate policy", other)),
        }
    }
}

/// Line allocation timing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocPolicy {
    /// Allocate the line when the miss request is sent ("allocate on miss").
    OnMiss,
    /// Allocate when the fill returns ("allocate on fill"); modern NVIDIA L1
    /// caches are streaming caches that allocate on fill, which is why
    /// Table II calls the L1 "streaming".
    #[default]
    OnFill,
}

impl fmt::Display for AllocPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocPolicy::OnMiss => f.write_str("on_miss"),
            AllocPolicy::OnFill => f.write_str("on_fill"),
        }
    }
}

impl std::str::FromStr for AllocPolicy {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "on_miss" => Ok(AllocPolicy::OnMiss),
            "on_fill" => Ok(AllocPolicy::OnFill),
            other => Err(ConfigError::invalid_value("allocation policy", other)),
        }
    }
}

/// The kinds of execution units inside a sub-core (Fig. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExecUnitKind {
    /// Integer ALUs.
    Int,
    /// Single-precision floating-point units (CUDA cores).
    Sp,
    /// Double-precision units.
    Dp,
    /// Special-function units (transcendentals).
    Sfu,
    /// Tensor cores.
    Tensor,
    /// Load/store units.
    LdSt,
}

impl ExecUnitKind {
    /// All unit kinds in a fixed order, convenient for iteration and for
    /// indexing per-unit tables.
    pub const ALL: [ExecUnitKind; 6] = [
        ExecUnitKind::Int,
        ExecUnitKind::Sp,
        ExecUnitKind::Dp,
        ExecUnitKind::Sfu,
        ExecUnitKind::Tensor,
        ExecUnitKind::LdSt,
    ];

    /// Stable index of this kind within [`ExecUnitKind::ALL`].
    pub fn index(self) -> usize {
        match self {
            ExecUnitKind::Int => 0,
            ExecUnitKind::Sp => 1,
            ExecUnitKind::Dp => 2,
            ExecUnitKind::Sfu => 3,
            ExecUnitKind::Tensor => 4,
            ExecUnitKind::LdSt => 5,
        }
    }
}

impl fmt::Display for ExecUnitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecUnitKind::Int => f.write_str("int"),
            ExecUnitKind::Sp => f.write_str("sp"),
            ExecUnitKind::Dp => f.write_str("dp"),
            ExecUnitKind::Sfu => f.write_str("sfu"),
            ExecUnitKind::Tensor => f.write_str("tensor"),
            ExecUnitKind::LdSt => f.write_str("ldst"),
        }
    }
}

impl std::str::FromStr for ExecUnitKind {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "int" => Ok(ExecUnitKind::Int),
            "sp" => Ok(ExecUnitKind::Sp),
            "dp" => Ok(ExecUnitKind::Dp),
            "sfu" => Ok(ExecUnitKind::Sfu),
            "tensor" => Ok(ExecUnitKind::Tensor),
            "ldst" => Ok(ExecUnitKind::LdSt),
            other => Err(ConfigError::invalid_value("execution unit kind", other)),
        }
    }
}

/// Configuration of one execution-unit class within a sub-core.
///
/// `lanes` is the number of SIMD lanes; a warp of 32 threads therefore
/// occupies the unit for `ceil(32 / lanes)` issue slots (its *initiation
/// interval*). `latency` is the pipeline depth in core cycles from issue to
/// writeback when there is no contention — the "fixed instruction delay" of
/// the paper's improved analytical ALU model (§III-D1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExecUnitConfig {
    /// SIMD lane count (e.g. 16 for the Turing sub-core INT unit, so a warp
    /// needs two passes). Table II writes `DP:0.5x` for two sub-cores
    /// sharing one DP unit; we model that as one lane.
    pub lanes: u32,
    /// Uncontended issue-to-writeback latency in core cycles.
    pub latency: u32,
}

impl ExecUnitConfig {
    /// Create a unit configuration.
    pub fn new(lanes: u32, latency: u32) -> Self {
        ExecUnitConfig { lanes, latency }
    }

    /// Number of scheduler cycles a 32-thread warp occupies this unit's
    /// issue port (the initiation interval).
    pub fn initiation_interval(&self, warp_size: u32) -> u32 {
        if self.lanes == 0 {
            return warp_size;
        }
        warp_size.div_ceil(self.lanes)
    }
}

/// Configuration of one cache (L1 data, L2 slice, or the simplified
/// instruction/constant caches).
///
/// Sizes follow the sectored organization of Table II: `line_bytes`-sized
/// lines split into `sector_bytes` sectors, with misses tracked in an MSHR
/// file that merges up to `mshr_max_merge` requests per entry.
///
/// Sector validity is tracked as a `u8` bitmap (one bit per sector)
/// everywhere downstream — see `AddressMapping::sector_mask` in
/// `swiftsim-mem` — so [`CacheConfig::validate`] rejects geometries with
/// more than 8 sectors per line.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Number of sets.
    pub sets: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes (128 B on the modeled GPUs).
    pub line_bytes: u32,
    /// Sector size in bytes (32 B on the modeled GPUs).
    pub sector_bytes: u32,
    /// Number of banks; concurrent accesses to distinct banks proceed in
    /// parallel, same-bank accesses serialize (bank conflicts).
    pub banks: u32,
    /// Miss-status holding register entries.
    pub mshr_entries: u32,
    /// Maximum misses merged into a single MSHR entry.
    pub mshr_max_merge: u32,
    /// Replacement policy.
    pub replacement: ReplacementPolicy,
    /// Write-hit policy.
    pub write_policy: CacheWritePolicy,
    /// Write-miss allocation policy.
    pub write_allocate: CacheWriteAllocate,
    /// Line allocation timing.
    pub alloc: AllocPolicy,
    /// Hit latency in core cycles (32 for the 2080 Ti L1, 188 for its L2).
    pub latency: u32,
}

impl CacheConfig {
    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * u64::from(self.line_bytes)
    }

    /// Sectors per line.
    ///
    /// Bounded to at most 8 by [`CacheConfig::validate`]: sector masks are
    /// carried as `u8` bitmaps throughout the memory hierarchy (one bit per
    /// sector of a line), so a geometry with more than 8 sectors per line
    /// cannot be represented.
    pub fn sectors_per_line(&self) -> u32 {
        self.line_bytes / self.sector_bytes
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any field is zero where a positive value is
    /// required, if `sets` is not a power of two, if the sector size does
    /// not evenly divide the line size, or if the line has more than 8
    /// sectors (the `u8` sector-mask invariant).
    pub fn validate(&self, name: &str) -> Result<(), ConfigError> {
        if self.sets == 0 || self.ways == 0 || self.line_bytes == 0 || self.banks == 0 {
            return Err(ConfigError::constraint(format!(
                "{name}: sets, ways, line size and banks must be positive"
            )));
        }
        if !self.sets.is_power_of_two() {
            return Err(ConfigError::constraint(format!(
                "{name}: set count {} is not a power of two",
                self.sets
            )));
        }
        if self.sector_bytes == 0 || !self.line_bytes.is_multiple_of(self.sector_bytes) {
            return Err(ConfigError::constraint(format!(
                "{name}: sector size {} must evenly divide line size {}",
                self.sector_bytes, self.line_bytes
            )));
        }
        if self.sectors_per_line() > 8 {
            return Err(ConfigError::constraint(format!(
                "{name}: {} sectors per line ({} B line / {} B sector) exceeds \
                 the 8-sector limit imposed by the u8 sector masks used across \
                 the memory hierarchy",
                self.sectors_per_line(),
                self.line_bytes,
                self.sector_bytes
            )));
        }
        if self.mshr_entries == 0 || self.mshr_max_merge == 0 {
            return Err(ConfigError::constraint(format!(
                "{name}: MSHR entries and merge limit must be positive"
            )));
        }
        Ok(())
    }
}

/// Streaming-multiprocessor configuration (Fig. 1, Table II).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct SmConfig {
    /// Sub-cores (warp-scheduler partitions) per SM; 4 on Turing/Ampere.
    pub sub_cores: u32,
    /// Threads per warp (32 on all NVIDIA GPUs).
    pub warp_size: u32,
    /// Maximum resident warps per SM.
    pub max_warps: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks: u32,
    /// Maximum resident threads per SM.
    pub max_threads: u32,
    /// Register-file size per SM, in 32-bit registers.
    pub registers: u32,
    /// Shared-memory capacity per SM in bytes.
    pub shared_mem_bytes: u32,
    /// Shared-memory banks (conflict-free when lanes hit distinct banks).
    pub shared_mem_banks: u32,
    /// Uncontended shared-memory access latency in cycles.
    pub shared_mem_latency: u32,
    /// Warp schedulers per sub-core (1x in Table II).
    pub schedulers_per_sub_core: u32,
    /// Scheduling policy.
    pub scheduler: SchedulerPolicy,
    /// Per-class execution unit shapes, indexed by [`ExecUnitKind::index`].
    pub exec_units: [ExecUnitConfig; 6],
    /// L1 data cache shared by the SM's sub-cores.
    pub l1d: CacheConfig,
}

impl SmConfig {
    /// The execution-unit configuration for `kind`.
    pub fn exec_unit(&self, kind: ExecUnitKind) -> ExecUnitConfig {
        self.exec_units[kind.index()]
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when structural limits are zero or mutually
    /// inconsistent (e.g. `max_threads < warp_size`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.sub_cores == 0 {
            return Err(ConfigError::constraint(
                "SM must have at least one sub-core",
            ));
        }
        if self.warp_size == 0 || !self.warp_size.is_power_of_two() || self.warp_size > 32 {
            return Err(ConfigError::constraint(
                "warp size must be a power of two between 1 and 32",
            ));
        }
        if self.max_threads < self.warp_size {
            return Err(ConfigError::constraint(
                "max threads per SM is smaller than one warp",
            ));
        }
        if self.max_warps == 0 || self.max_blocks == 0 {
            return Err(ConfigError::constraint(
                "max warps and max blocks per SM must be positive",
            ));
        }
        if self.max_warps * self.warp_size < self.max_threads {
            return Err(ConfigError::constraint(
                "max_warps * warp_size must cover max_threads",
            ));
        }
        if self.schedulers_per_sub_core == 0 {
            return Err(ConfigError::constraint(
                "each sub-core needs at least one scheduler",
            ));
        }
        for kind in ExecUnitKind::ALL {
            let u = self.exec_unit(kind);
            if u.lanes == 0 || u.latency == 0 {
                return Err(ConfigError::constraint(format!(
                    "execution unit {kind}: lanes and latency must be positive"
                )));
            }
        }
        self.l1d.validate("L1D")?;
        Ok(())
    }
}

/// Off-chip memory-system configuration (L2 + DRAM, Table II).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemoryConfig {
    /// Memory partitions; each owns one L2 slice and one DRAM channel
    /// (22 on the RTX 2080 Ti).
    pub partitions: u32,
    /// Per-partition L2 slice.
    pub l2: CacheConfig,
    /// DRAM access latency in core cycles (227 on the 2080 Ti).
    pub dram_latency: u32,
    /// Peak DRAM transactions (32 B sectors) a partition can start per core
    /// cycle, expressed as cycles between transactions. 2 means one sector
    /// every other cycle.
    pub dram_cycles_per_txn: u32,
    /// Outstanding-request queue depth per DRAM channel.
    pub dram_queue_depth: u32,
}

impl MemoryConfig {
    /// Aggregate L2 capacity across partitions, in bytes.
    pub fn l2_capacity_bytes(&self) -> u64 {
        self.l2.capacity_bytes() * u64::from(self.partitions)
    }

    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the partition count, DRAM timing, or the
    /// embedded L2 configuration is invalid.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.partitions == 0 {
            return Err(ConfigError::constraint("at least one memory partition"));
        }
        if self.dram_latency == 0 || self.dram_cycles_per_txn == 0 || self.dram_queue_depth == 0 {
            return Err(ConfigError::constraint(
                "DRAM latency, bandwidth and queue depth must be positive",
            ));
        }
        self.l2.validate("L2")?;
        Ok(())
    }
}

/// Interconnect topology between SMs and memory partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NocTopology {
    /// Full crossbar (the common model for NVIDIA's SM↔L2 fabric).
    #[default]
    Crossbar,
    /// 2D mesh with XY routing; hop latency is per link.
    Mesh,
}

impl fmt::Display for NocTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NocTopology::Crossbar => f.write_str("crossbar"),
            NocTopology::Mesh => f.write_str("mesh"),
        }
    }
}

impl std::str::FromStr for NocTopology {
    type Err = ConfigError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "crossbar" => Ok(NocTopology::Crossbar),
            "mesh" => Ok(NocTopology::Mesh),
            other => Err(ConfigError::invalid_value("NoC topology", other)),
        }
    }
}

/// On-chip interconnect configuration (§II-A: "SMs … are connected to the L2
/// cache via on-chip interconnects").
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct NocConfig {
    /// Topology.
    pub topology: NocTopology,
    /// Zero-load latency in core cycles from SM to L2 partition.
    pub latency: u32,
    /// Flit size in bytes (one 32 B sector plus header fits in one flit).
    pub flit_bytes: u32,
    /// Per-output-port queue depth in flits.
    pub queue_depth: u32,
    /// Flits a port can accept per cycle.
    pub flits_per_cycle: u32,
}

impl NocConfig {
    /// Validate internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any timing or sizing field is zero.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.latency == 0
            || self.flit_bytes == 0
            || self.queue_depth == 0
            || self.flits_per_cycle == 0
        {
            return Err(ConfigError::constraint(
                "NoC latency, flit size, queue depth and throughput must be positive",
            ));
        }
        Ok(())
    }
}

/// Complete configuration of a modeled GPU.
///
/// This is the object the Hardware Configuration Collector hands to the
/// performance model. See [`crate::presets`] for the three validated real-GPU
/// configurations from the paper.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GpuConfig {
    /// Human-readable name, e.g. `"RTX 2080 Ti"`.
    pub name: String,
    /// Marketing architecture name, e.g. `"Turing"` (Table I).
    pub architecture: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// SM-internal configuration (identical across SMs).
    pub sm: SmConfig,
    /// L2 + DRAM configuration.
    pub memory: MemoryConfig,
    /// SM↔L2 interconnect configuration.
    pub noc: NocConfig,
}

impl GpuConfig {
    /// Total CUDA-core count (SP lanes × sub-cores × SMs), matching the
    /// "CUDA Cores" row of Table I.
    pub fn cuda_cores(&self) -> u32 {
        self.sm.exec_unit(ExecUnitKind::Sp).lanes * self.sm.sub_cores * self.num_sms
    }

    /// Validate the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found in any component.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_sms == 0 {
            return Err(ConfigError::constraint("GPU must have at least one SM"));
        }
        if self.name.is_empty() {
            return Err(ConfigError::constraint("GPU name must not be empty"));
        }
        self.sm.validate()?;
        self.memory.validate()?;
        self.noc.validate()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn initiation_interval_rounds_up() {
        let u = ExecUnitConfig::new(16, 4);
        assert_eq!(u.initiation_interval(32), 2);
        let u = ExecUnitConfig::new(32, 4);
        assert_eq!(u.initiation_interval(32), 1);
        let u = ExecUnitConfig::new(5, 4);
        assert_eq!(u.initiation_interval(32), 7);
    }

    #[test]
    fn initiation_interval_zero_lanes_is_safe() {
        let u = ExecUnitConfig::new(0, 4);
        assert_eq!(u.initiation_interval(32), 32);
    }

    #[test]
    fn cache_capacity() {
        let cfg = presets::rtx2080ti();
        // L2: 5.5 MB total across 22 partitions (Table I).
        assert_eq!(cfg.memory.l2_capacity_bytes(), 5_632 * 1024);
    }

    #[test]
    fn sectors_per_line() {
        let cfg = presets::rtx2080ti();
        assert_eq!(cfg.sm.l1d.sectors_per_line(), 4);
        assert_eq!(cfg.memory.l2.sectors_per_line(), 4);
    }

    #[test]
    fn validate_rejects_zero_sms() {
        let mut cfg = presets::rtx2080ti();
        cfg.num_sms = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_pow2_sets() {
        let mut cfg = presets::rtx2080ti();
        cfg.sm.l1d.sets = 3;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_bad_sector_size() {
        let mut cfg = presets::rtx2080ti();
        cfg.memory.l2.sector_bytes = 48;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_more_than_eight_sectors_per_line() {
        // 256 B lines with 16 B sectors = 16 sectors per line, which the u8
        // sector masks cannot represent. This used to pass validation and
        // then overflow `1u8 << s` in AddressMapping::sector_mask.
        let mut cfg = presets::rtx2080ti();
        cfg.sm.l1d.line_bytes = 256;
        cfg.sm.l1d.sector_bytes = 16;
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("8-sector limit"), "{err}");

        // Exactly 8 sectors per line is still fine.
        let mut cfg = presets::rtx2080ti();
        cfg.sm.l1d.line_bytes = 128;
        cfg.sm.l1d.sector_bytes = 16;
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn validate_rejects_thread_warp_mismatch() {
        let mut cfg = presets::rtx2080ti();
        cfg.sm.max_threads = cfg.sm.max_warps * cfg.sm.warp_size + 32;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn enum_round_trips() {
        for p in [
            SchedulerPolicy::Gto,
            SchedulerPolicy::Lrr,
            SchedulerPolicy::TwoLevel,
        ] {
            assert_eq!(p.to_string().parse::<SchedulerPolicy>().unwrap(), p);
        }
        for p in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            assert_eq!(p.to_string().parse::<ReplacementPolicy>().unwrap(), p);
        }
        for k in ExecUnitKind::ALL {
            assert_eq!(k.to_string().parse::<ExecUnitKind>().unwrap(), k);
            assert_eq!(ExecUnitKind::ALL[k.index()], k);
        }
    }

    #[test]
    fn unknown_enum_values_error() {
        assert!("gso".parse::<SchedulerPolicy>().is_err());
        assert!("plru".parse::<ReplacementPolicy>().is_err());
        assert!("torus".parse::<NocTopology>().is_err());
    }
}
