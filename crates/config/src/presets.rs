//! Validated configurations for the three real GPUs the paper evaluates
//! against (Table I), with the RTX 2080 Ti detailed per Table II.
//!
//! # Examples
//!
//! ```
//! use swiftsim_config::presets;
//!
//! let turing = presets::rtx2080ti();
//! assert_eq!(turing.num_sms, 68);
//! assert_eq!(turing.cuda_cores(), 4352);
//! ```

use crate::arch::{
    AllocPolicy, CacheConfig, CacheWriteAllocate, CacheWritePolicy, ExecUnitConfig, GpuConfig,
    MemoryConfig, NocConfig, NocTopology, ReplacementPolicy, SchedulerPolicy, SmConfig,
};

/// L1 data cache per Table II: sectored, streaming (allocate-on-fill),
/// write-through, 4 banks, 128 B lines, 32 B sectors, 256 MSHR entries with
/// up to 8 merged requests each, LRU, 32-cycle hit latency.
fn turing_l1(capacity_bytes: u32) -> CacheConfig {
    let ways = 4;
    let line = 128;
    CacheConfig {
        sets: capacity_bytes / (ways * line),
        ways,
        line_bytes: line,
        sector_bytes: 32,
        banks: 4,
        mshr_entries: 256,
        mshr_max_merge: 8,
        replacement: ReplacementPolicy::Lru,
        write_policy: CacheWritePolicy::WriteThrough,
        write_allocate: CacheWriteAllocate::NoWriteAllocate,
        alloc: AllocPolicy::OnFill,
        latency: 32,
    }
}

/// L2 slice per Table II: sectored, write-back, 128 B lines, 32 B sectors,
/// 192 MSHR entries with up to 4 merged requests each, LRU, 188-cycle
/// latency. `capacity_bytes` is the per-partition slice size.
fn turing_l2(capacity_bytes: u32, latency: u32) -> CacheConfig {
    let ways = 16;
    let line = 128;
    CacheConfig {
        sets: capacity_bytes / (ways * line),
        ways,
        line_bytes: line,
        sector_bytes: 32,
        banks: 2,
        mshr_entries: 192,
        mshr_max_merge: 4,
        replacement: ReplacementPolicy::Lru,
        write_policy: CacheWritePolicy::WriteBack,
        write_allocate: CacheWriteAllocate::WriteAllocate,
        alloc: AllocPolicy::OnMiss,
        latency,
    }
}

fn default_noc() -> NocConfig {
    NocConfig {
        topology: NocTopology::Crossbar,
        latency: 8,
        flit_bytes: 40,
        queue_depth: 16,
        flits_per_cycle: 1,
    }
}

/// NVIDIA GeForce RTX 2080 Ti (Turing TU102) — the GPU chosen for the
/// paper's detailed comparison. All values follow Table II; derived sizes
/// match Table I (68 SMs, 4352 CUDA cores, 5.5 MB L2).
pub fn rtx2080ti() -> GpuConfig {
    GpuConfig {
        name: "RTX 2080 Ti".to_owned(),
        architecture: "Turing".to_owned(),
        num_sms: 68,
        sm: SmConfig {
            sub_cores: 4,
            warp_size: 32,
            max_warps: 32,
            max_blocks: 16,
            max_threads: 1024,
            registers: 65_536,
            shared_mem_bytes: 65_536,
            shared_mem_banks: 32,
            shared_mem_latency: 24,
            schedulers_per_sub_core: 1,
            scheduler: SchedulerPolicy::Gto,
            // Table II: INT:16x, SP:16x, DP:0.5x (one lane shared), SFU:4x,
            // LD/ST:4x per sub-core.
            exec_units: [
                ExecUnitConfig::new(16, 4), // INT
                ExecUnitConfig::new(16, 4), // SP
                ExecUnitConfig::new(1, 48), // DP (0.5x per Table II)
                ExecUnitConfig::new(4, 21), // SFU
                ExecUnitConfig::new(8, 32), // Tensor
                ExecUnitConfig::new(4, 2),  // LD/ST address generation
            ],
            l1d: turing_l1(64 * 1024),
        },
        memory: MemoryConfig {
            partitions: 22,
            // 5.5 MB / 22 partitions = 256 KiB per slice.
            l2: turing_l2(256 * 1024, 188),
            dram_latency: 227,
            dram_cycles_per_txn: 2,
            dram_queue_depth: 64,
        },
        noc: default_noc(),
    }
}

/// NVIDIA GeForce RTX 3060 (Ampere GA106): 28 SMs, 3584 CUDA cores, 3 MB L2
/// over a 192-bit bus (12 partitions).
pub fn rtx3060() -> GpuConfig {
    GpuConfig {
        name: "RTX 3060".to_owned(),
        architecture: "Ampere".to_owned(),
        num_sms: 28,
        sm: SmConfig {
            sub_cores: 4,
            warp_size: 32,
            max_warps: 48,
            max_blocks: 16,
            max_threads: 1536,
            registers: 65_536,
            shared_mem_bytes: 102_400,
            shared_mem_banks: 32,
            shared_mem_latency: 23,
            schedulers_per_sub_core: 1,
            scheduler: SchedulerPolicy::Gto,
            // Ampere doubles FP32 throughput: 32 SP lanes per sub-core.
            exec_units: [
                ExecUnitConfig::new(16, 4), // INT
                ExecUnitConfig::new(32, 4), // SP
                ExecUnitConfig::new(1, 48), // DP
                ExecUnitConfig::new(4, 21), // SFU
                ExecUnitConfig::new(8, 32), // Tensor
                ExecUnitConfig::new(4, 2),  // LD/ST
            ],
            l1d: turing_l1(128 * 1024),
        },
        memory: MemoryConfig {
            partitions: 12,
            // 3 MB / 12 partitions = 256 KiB per slice.
            l2: turing_l2(256 * 1024, 200),
            dram_latency: 250,
            dram_cycles_per_txn: 2,
            dram_queue_depth: 64,
        },
        noc: default_noc(),
    }
}

/// NVIDIA GeForce RTX 3090 (Ampere GA102): 82 SMs, 10496 CUDA cores, 6 MB L2
/// over a 384-bit bus (24 partitions).
pub fn rtx3090() -> GpuConfig {
    GpuConfig {
        name: "RTX 3090".to_owned(),
        architecture: "Ampere".to_owned(),
        num_sms: 82,
        sm: SmConfig {
            sub_cores: 4,
            warp_size: 32,
            max_warps: 48,
            max_blocks: 16,
            max_threads: 1536,
            registers: 65_536,
            shared_mem_bytes: 102_400,
            shared_mem_banks: 32,
            shared_mem_latency: 23,
            schedulers_per_sub_core: 1,
            scheduler: SchedulerPolicy::Gto,
            exec_units: [
                ExecUnitConfig::new(16, 4), // INT
                ExecUnitConfig::new(32, 4), // SP
                ExecUnitConfig::new(1, 48), // DP
                ExecUnitConfig::new(4, 21), // SFU
                ExecUnitConfig::new(8, 32), // Tensor
                ExecUnitConfig::new(4, 2),  // LD/ST
            ],
            l1d: turing_l1(128 * 1024),
        },
        memory: MemoryConfig {
            partitions: 24,
            // 6 MB / 24 partitions = 256 KiB per slice.
            l2: turing_l2(256 * 1024, 200),
            dram_latency: 250,
            dram_cycles_per_txn: 2,
            dram_queue_depth: 64,
        },
        noc: default_noc(),
    }
}

/// All three preset GPUs in Table I order.
pub fn all() -> Vec<GpuConfig> {
    vec![rtx2080ti(), rtx3060(), rtx3090()]
}

/// Look up a preset by (case-insensitive) name: `"RTX 2080 Ti"`,
/// `"RTX 3060"`, or `"RTX 3090"`. Returns `None` for unknown names.
pub fn by_name(name: &str) -> Option<GpuConfig> {
    let norm: String = name
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase();
    match norm.as_str() {
        "rtx2080ti" | "2080ti" => Some(rtx2080ti()),
        "rtx3060" | "3060" => Some(rtx3060()),
        "rtx3090" | "3090" => Some(rtx3090()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_rows_match() {
        // Table I: SMs, CUDA cores, L2 capacity for all three GPUs.
        let t = rtx2080ti();
        assert_eq!((t.num_sms, t.cuda_cores()), (68, 4352));
        assert_eq!(t.memory.l2_capacity_bytes(), 5_632 * 1024); // 5.5 MB
        assert_eq!(t.architecture, "Turing");

        let a = rtx3060();
        assert_eq!((a.num_sms, a.cuda_cores()), (28, 3584));
        assert_eq!(a.memory.l2_capacity_bytes(), 3 * 1024 * 1024);
        assert_eq!(a.architecture, "Ampere");

        let a = rtx3090();
        assert_eq!((a.num_sms, a.cuda_cores()), (82, 10496));
        assert_eq!(a.memory.l2_capacity_bytes(), 6 * 1024 * 1024);
        assert_eq!(a.architecture, "Ampere");
    }

    #[test]
    fn table2_values_match() {
        let t = rtx2080ti();
        assert_eq!(t.sm.sub_cores, 4);
        assert_eq!(t.sm.schedulers_per_sub_core, 1);
        assert_eq!(t.sm.scheduler.to_string(), "gto");
        assert_eq!(t.sm.l1d.banks, 4);
        assert_eq!(t.sm.l1d.line_bytes, 128);
        assert_eq!(t.sm.l1d.sector_bytes, 32);
        assert_eq!(t.sm.l1d.mshr_entries, 256);
        assert_eq!(t.sm.l1d.mshr_max_merge, 8);
        assert_eq!(t.sm.l1d.latency, 32);
        assert_eq!(t.memory.l2.mshr_entries, 192);
        assert_eq!(t.memory.l2.mshr_max_merge, 4);
        assert_eq!(t.memory.l2.latency, 188);
        assert_eq!(t.memory.partitions, 22);
        assert_eq!(t.memory.dram_latency, 227);
    }

    #[test]
    fn all_presets_validate() {
        for cfg in all() {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", cfg.name));
        }
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(by_name("RTX 2080 Ti").unwrap().num_sms, 68);
        assert_eq!(by_name("rtx-3060").unwrap().num_sms, 28);
        assert_eq!(by_name("3090").unwrap().num_sms, 82);
        assert!(by_name("RTX 4090").is_none());
    }
}
