//! GPGPU-Sim-style `-key value` configuration file format.
//!
//! Each non-empty line is `-key value`; `#` starts a comment. Keys use a
//! `section:field` naming scheme (`-sm:max_warps 32`, `-l1:sets 128`, ...)
//! and execution units are written `lanes:latency` (`-sm:exec:int 16:4`).
//! [`GpuConfig::to_config_text`] emits every key, and [`GpuConfig::parse`]
//! requires every key, so files round-trip exactly and stale configs fail
//! loudly rather than silently picking defaults.

use crate::arch::{
    CacheConfig, ExecUnitConfig, ExecUnitKind, GpuConfig, MemoryConfig, NocConfig, SmConfig,
};
use crate::error::ConfigError;
use std::collections::HashMap;
use std::fmt::Write as _;

impl GpuConfig {
    /// Serialize to the `-key value` text format.
    ///
    /// # Examples
    ///
    /// ```
    /// use swiftsim_config::{presets, GpuConfig};
    /// # fn main() -> Result<(), swiftsim_config::ConfigError> {
    /// let cfg = presets::rtx3060();
    /// let text = cfg.to_config_text();
    /// assert_eq!(GpuConfig::parse(&text)?, cfg);
    /// # Ok(())
    /// # }
    /// ```
    pub fn to_config_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# Swift-Sim hardware configuration");
        let _ = writeln!(out, "-name {}", self.name);
        let _ = writeln!(out, "-architecture {}", self.architecture);
        let _ = writeln!(out, "-num_sms {}", self.num_sms);
        let sm = &self.sm;
        let _ = writeln!(out, "-sm:sub_cores {}", sm.sub_cores);
        let _ = writeln!(out, "-sm:warp_size {}", sm.warp_size);
        let _ = writeln!(out, "-sm:max_warps {}", sm.max_warps);
        let _ = writeln!(out, "-sm:max_blocks {}", sm.max_blocks);
        let _ = writeln!(out, "-sm:max_threads {}", sm.max_threads);
        let _ = writeln!(out, "-sm:registers {}", sm.registers);
        let _ = writeln!(out, "-sm:shared_mem_bytes {}", sm.shared_mem_bytes);
        let _ = writeln!(out, "-sm:shared_mem_banks {}", sm.shared_mem_banks);
        let _ = writeln!(out, "-sm:shared_mem_latency {}", sm.shared_mem_latency);
        let _ = writeln!(
            out,
            "-sm:schedulers_per_sub_core {}",
            sm.schedulers_per_sub_core
        );
        let _ = writeln!(out, "-sm:scheduler {}", sm.scheduler);
        for kind in ExecUnitKind::ALL {
            let u = sm.exec_unit(kind);
            let _ = writeln!(out, "-sm:exec:{kind} {}:{}", u.lanes, u.latency);
        }
        write_cache(&mut out, "l1", &sm.l1d);
        let mem = &self.memory;
        let _ = writeln!(out, "-mem:partitions {}", mem.partitions);
        write_cache(&mut out, "l2", &mem.l2);
        let _ = writeln!(out, "-mem:dram_latency {}", mem.dram_latency);
        let _ = writeln!(out, "-mem:dram_cycles_per_txn {}", mem.dram_cycles_per_txn);
        let _ = writeln!(out, "-mem:dram_queue_depth {}", mem.dram_queue_depth);
        let noc = &self.noc;
        let _ = writeln!(out, "-noc:topology {}", noc.topology);
        let _ = writeln!(out, "-noc:latency {}", noc.latency);
        let _ = writeln!(out, "-noc:flit_bytes {}", noc.flit_bytes);
        let _ = writeln!(out, "-noc:queue_depth {}", noc.queue_depth);
        let _ = writeln!(out, "-noc:flits_per_cycle {}", noc.flits_per_cycle);
        out
    }

    /// Parse a configuration from the `-key value` text format.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::Parse`] for malformed lines,
    /// [`ConfigError::MissingKey`] when a required key is absent,
    /// [`ConfigError::InvalidValue`] for out-of-domain values, and any
    /// [`ConfigError::Constraint`] raised by final validation.
    pub fn parse(text: &str) -> Result<GpuConfig, ConfigError> {
        let mut map: HashMap<String, String> = HashMap::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }
            let Some(rest) = line.strip_prefix('-') else {
                return Err(ConfigError::parse(
                    line_no,
                    "expected line to start with '-'",
                ));
            };
            let Some((key, value)) = rest.split_once(char::is_whitespace) else {
                return Err(ConfigError::parse(
                    line_no,
                    format!("key {rest:?} has no value"),
                ));
            };
            if map
                .insert(key.to_owned(), value.trim().to_owned())
                .is_some()
            {
                return Err(ConfigError::parse(line_no, format!("duplicate key -{key}")));
            }
        }
        let mut p = Params { map };

        let cfg = GpuConfig {
            name: p.take("name")?,
            architecture: p.take("architecture")?,
            num_sms: p.num("num_sms")?,
            sm: SmConfig {
                sub_cores: p.num("sm:sub_cores")?,
                warp_size: p.num("sm:warp_size")?,
                max_warps: p.num("sm:max_warps")?,
                max_blocks: p.num("sm:max_blocks")?,
                max_threads: p.num("sm:max_threads")?,
                registers: p.num("sm:registers")?,
                shared_mem_bytes: p.num("sm:shared_mem_bytes")?,
                shared_mem_banks: p.num("sm:shared_mem_banks")?,
                shared_mem_latency: p.num("sm:shared_mem_latency")?,
                schedulers_per_sub_core: p.num("sm:schedulers_per_sub_core")?,
                scheduler: p.parse("sm:scheduler")?,
                exec_units: {
                    let mut units = [ExecUnitConfig::new(1, 1); 6];
                    for kind in ExecUnitKind::ALL {
                        units[kind.index()] = p.exec_unit(&format!("sm:exec:{kind}"))?;
                    }
                    units
                },
                l1d: p.cache("l1")?,
            },
            memory: MemoryConfig {
                partitions: p.num("mem:partitions")?,
                l2: p.cache("l2")?,
                dram_latency: p.num("mem:dram_latency")?,
                dram_cycles_per_txn: p.num("mem:dram_cycles_per_txn")?,
                dram_queue_depth: p.num("mem:dram_queue_depth")?,
            },
            noc: NocConfig {
                topology: p.parse("noc:topology")?,
                latency: p.num("noc:latency")?,
                flit_bytes: p.num("noc:flit_bytes")?,
                queue_depth: p.num("noc:queue_depth")?,
                flits_per_cycle: p.num("noc:flits_per_cycle")?,
            },
        };
        if let Some(key) = p.map.keys().next() {
            return Err(ConfigError::invalid_value(
                "unknown config key",
                format!("-{key}"),
            ));
        }
        cfg.validate()?;
        Ok(cfg)
    }
}

fn write_cache(out: &mut String, prefix: &str, c: &CacheConfig) {
    let _ = writeln!(out, "-{prefix}:sets {}", c.sets);
    let _ = writeln!(out, "-{prefix}:ways {}", c.ways);
    let _ = writeln!(out, "-{prefix}:line_bytes {}", c.line_bytes);
    let _ = writeln!(out, "-{prefix}:sector_bytes {}", c.sector_bytes);
    let _ = writeln!(out, "-{prefix}:banks {}", c.banks);
    let _ = writeln!(out, "-{prefix}:mshr_entries {}", c.mshr_entries);
    let _ = writeln!(out, "-{prefix}:mshr_max_merge {}", c.mshr_max_merge);
    let _ = writeln!(out, "-{prefix}:replacement {}", c.replacement);
    let _ = writeln!(out, "-{prefix}:write_policy {}", c.write_policy);
    let _ = writeln!(out, "-{prefix}:write_allocate {}", c.write_allocate);
    let _ = writeln!(out, "-{prefix}:alloc {}", c.alloc);
    let _ = writeln!(out, "-{prefix}:latency {}", c.latency);
}

struct Params {
    map: HashMap<String, String>,
}

impl Params {
    fn take(&mut self, key: &str) -> Result<String, ConfigError> {
        self.map
            .remove(key)
            .ok_or_else(|| ConfigError::missing_key(format!("-{key}")))
    }

    fn num(&mut self, key: &str) -> Result<u32, ConfigError> {
        let v = self.take(key)?;
        v.parse()
            .map_err(|_| ConfigError::invalid_value(format!("-{key}"), v))
    }

    fn parse<T>(&mut self, key: &str) -> Result<T, ConfigError>
    where
        T: std::str::FromStr<Err = ConfigError>,
    {
        self.take(key)?.parse()
    }

    fn exec_unit(&mut self, key: &str) -> Result<ExecUnitConfig, ConfigError> {
        let v = self.take(key)?;
        let Some((lanes, latency)) = v.split_once(':') else {
            return Err(ConfigError::invalid_value(format!("-{key}"), v));
        };
        let lanes = lanes
            .parse()
            .map_err(|_| ConfigError::invalid_value(format!("-{key} lanes"), lanes))?;
        let latency = latency
            .parse()
            .map_err(|_| ConfigError::invalid_value(format!("-{key} latency"), latency))?;
        Ok(ExecUnitConfig::new(lanes, latency))
    }

    fn cache(&mut self, prefix: &str) -> Result<CacheConfig, ConfigError> {
        Ok(CacheConfig {
            sets: self.num(&format!("{prefix}:sets"))?,
            ways: self.num(&format!("{prefix}:ways"))?,
            line_bytes: self.num(&format!("{prefix}:line_bytes"))?,
            sector_bytes: self.num(&format!("{prefix}:sector_bytes"))?,
            banks: self.num(&format!("{prefix}:banks"))?,
            mshr_entries: self.num(&format!("{prefix}:mshr_entries"))?,
            mshr_max_merge: self.num(&format!("{prefix}:mshr_max_merge"))?,
            replacement: self.parse(&format!("{prefix}:replacement"))?,
            write_policy: self.parse(&format!("{prefix}:write_policy"))?,
            write_allocate: self.parse(&format!("{prefix}:write_allocate"))?,
            alloc: self.parse(&format!("{prefix}:alloc"))?,
            latency: self.num(&format!("{prefix}:latency"))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn round_trip_all_presets() {
        for cfg in presets::all() {
            let text = cfg.to_config_text();
            let parsed = GpuConfig::parse(&text).expect("round trip parse");
            assert_eq!(parsed, cfg);
        }
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let mut text = String::from("\n# leading comment\n\n");
        text.push_str(&presets::rtx2080ti().to_config_text());
        text.push_str("\n   # trailing comment\n");
        assert_eq!(GpuConfig::parse(&text).unwrap(), presets::rtx2080ti());
    }

    #[test]
    fn inline_comment_stripped() {
        let text = presets::rtx2080ti()
            .to_config_text()
            .replace("-num_sms 68", "-num_sms 68   # Table I");
        assert_eq!(GpuConfig::parse(&text).unwrap().num_sms, 68);
    }

    #[test]
    fn missing_key_reported() {
        let text = presets::rtx2080ti()
            .to_config_text()
            .lines()
            .filter(|l| !l.starts_with("-mem:partitions"))
            .collect::<Vec<_>>()
            .join("\n");
        let err = GpuConfig::parse(&text).unwrap_err();
        assert_eq!(err, ConfigError::MissingKey("-mem:partitions".to_owned()));
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut text = presets::rtx2080ti().to_config_text();
        text.push_str("-num_sms 10\n");
        assert!(matches!(
            GpuConfig::parse(&text),
            Err(ConfigError::Parse { .. })
        ));
    }

    #[test]
    fn unknown_key_rejected() {
        let mut text = presets::rtx2080ti().to_config_text();
        text.push_str("-sm:frobnicate 3\n");
        assert!(matches!(
            GpuConfig::parse(&text),
            Err(ConfigError::InvalidValue { .. })
        ));
    }

    #[test]
    fn malformed_line_rejected() {
        let mut text = presets::rtx2080ti().to_config_text();
        text.push_str("num_sms 10\n");
        assert!(matches!(
            GpuConfig::parse(&text),
            Err(ConfigError::Parse { .. })
        ));
    }

    #[test]
    fn bad_number_rejected() {
        let text = presets::rtx2080ti()
            .to_config_text()
            .replace("-num_sms 68", "-num_sms sixty-eight");
        assert!(matches!(
            GpuConfig::parse(&text),
            Err(ConfigError::InvalidValue { .. })
        ));
    }

    #[test]
    fn bad_exec_unit_rejected() {
        let text = presets::rtx2080ti()
            .to_config_text()
            .replace("-sm:exec:int 16:4", "-sm:exec:int 16x4");
        assert!(matches!(
            GpuConfig::parse(&text),
            Err(ConfigError::InvalidValue { .. })
        ));
    }

    #[test]
    fn parse_validates_constraints() {
        let text = presets::rtx2080ti()
            .to_config_text()
            .replace("-l1:sets 128", "-l1:sets 100");
        assert!(matches!(
            GpuConfig::parse(&text),
            Err(ConfigError::Constraint(_))
        ));
    }
}
