//! Error type for configuration parsing and validation.

use std::fmt;

/// Error produced while parsing or validating a [`GpuConfig`].
///
/// [`GpuConfig`]: crate::GpuConfig
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A config-file line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A key was given a value outside its domain.
    InvalidValue {
        /// The parameter the value was supplied for.
        what: String,
        /// The offending value.
        value: String,
    },
    /// A required key is missing from the config file.
    MissingKey(
        /// The missing key, e.g. `-num_sms`.
        String,
    ),
    /// A structural constraint between fields is violated.
    Constraint(
        /// Description of the violated constraint.
        String,
    ),
}

impl ConfigError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        ConfigError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn invalid_value(what: impl Into<String>, value: impl Into<String>) -> Self {
        ConfigError::InvalidValue {
            what: what.into(),
            value: value.into(),
        }
    }

    pub(crate) fn missing_key(key: impl Into<String>) -> Self {
        ConfigError::MissingKey(key.into())
    }

    pub(crate) fn constraint(message: impl Into<String>) -> Self {
        ConfigError::Constraint(message.into())
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Parse { line, message } => {
                write!(f, "config line {line}: {message}")
            }
            ConfigError::InvalidValue { what, value } => {
                write!(f, "invalid {what}: {value:?}")
            }
            ConfigError::MissingKey(key) => write!(f, "missing config key {key}"),
            ConfigError::Constraint(message) => write!(f, "invalid configuration: {message}"),
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = ConfigError::invalid_value("scheduler policy", "gso");
        assert_eq!(err.to_string(), "invalid scheduler policy: \"gso\"");
        let err = ConfigError::missing_key("-num_sms");
        assert_eq!(err.to_string(), "missing config key -num_sms");
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
    }
}
