//! Hardware Configuration Collector for the Swift-Sim GPU simulation
//! framework.
//!
//! This crate is the first half of Swift-Sim's *Frontend* (§III-A of the
//! paper): it collects and parses modeling parameters from configuration
//! files and provides them to the performance model. Architects modify these
//! settings — GPU core count, L1 cache size, the latency of each execution
//! unit, and so on — to simulate new GPU architectures.
//!
//! The crate provides three things:
//!
//! * A typed description of a GPU ([`GpuConfig`] and its parts: [`SmConfig`],
//!   [`CacheConfig`], [`MemoryConfig`], [`NocConfig`]).
//! * Validated presets for the three real GPUs the paper evaluates against
//!   (Tables I and II): [`presets::rtx2080ti`], [`presets::rtx3060`], and
//!   [`presets::rtx3090`].
//! * A GPGPU-Sim-style `-key value` text format ([`GpuConfig::parse`] /
//!   [`GpuConfig::to_config_text`]) so configurations can be stored in files
//!   and tweaked without recompiling.
//!
//! # Examples
//!
//! ```
//! use swiftsim_config::{presets, GpuConfig};
//!
//! # fn main() -> Result<(), swiftsim_config::ConfigError> {
//! // Start from the RTX 2080 Ti preset and explore a bigger L1.
//! let mut cfg = presets::rtx2080ti();
//! cfg.sm.l1d.ways *= 2;
//! cfg.validate()?;
//!
//! // Round-trip through the on-disk format.
//! let text = cfg.to_config_text();
//! let back = GpuConfig::parse(&text)?;
//! assert_eq!(cfg, back);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arch;
mod error;
mod hash;
mod parse;
pub mod presets;

pub use arch::{
    AllocPolicy, CacheConfig, CacheWriteAllocate, CacheWritePolicy, ExecUnitConfig, ExecUnitKind,
    GpuConfig, MemoryConfig, NocConfig, NocTopology, ReplacementPolicy, SchedulerPolicy, SmConfig,
};
pub use error::ConfigError;
pub use hash::fnv1a64;
