// The property-based suite needs the external `proptest` crate, which is
// unavailable in offline builds. Enable the crate's non-default `proptest`
// feature (after restoring the dev-dependency in Cargo.toml and the
// workspace manifest) to run it.
#![cfg(feature = "proptest")]

//! Property-based tests: arbitrary well-formed traces survive a
//! serialize/parse round trip, and statistics are preserved.

use proptest::prelude::*;
use swiftsim_trace::{
    AddressList, ApplicationTrace, KernelTrace, MemInfo, Opcode, Reg, TraceInstruction, WarpTrace,
};

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop::sample::select(Opcode::ALL.to_vec())
}

fn arb_mask() -> impl Strategy<Value = u32> {
    // Never empty: a traced instruction always has at least one active lane.
    any::<u32>().prop_map(|m| if m == 0 { 1 } else { m })
}

fn arb_inst() -> impl Strategy<Value = TraceInstruction> {
    (
        arb_opcode(),
        any::<u16>(),
        prop::option::of(0u16..255),
        prop::collection::vec(0u16..255, 0..4),
        arb_mask(),
        any::<u64>(),
        0u64..256,
        prop::sample::select(vec![1u8, 2, 4, 8, 16]),
        any::<bool>(),
    )
        .prop_map(
            |(opcode, pc, dst, srcs, mask, base, stride, width, explicit)| {
                let mem = opcode.mem_space().map(|space| {
                    let addresses = if explicit {
                        AddressList::Explicit(
                            (0..mask.count_ones())
                                .map(|i| base.wrapping_add(u64::from(i) * 7919))
                                .collect(),
                        )
                    } else {
                        AddressList::Strided { base, stride }
                    };
                    MemInfo {
                        space,
                        width,
                        addresses,
                    }
                });
                TraceInstruction {
                    pc: u32::from(pc),
                    opcode,
                    dst: dst.map(Reg),
                    srcs: srcs.into_iter().map(Reg).collect(),
                    active_mask: mask,
                    mem,
                }
            },
        )
}

fn arb_app() -> impl Strategy<Value = ApplicationTrace> {
    prop::collection::vec(
        (
            prop::collection::vec(
                prop::collection::vec(arb_inst(), 1..12), // warps
                1..3,
            ),
            1u32..3, // blocks
        ),
        1..3, // kernels
    )
    .prop_map(|kernels| {
        let ks = kernels
            .into_iter()
            .enumerate()
            .map(|(ki, (warps, nblocks))| {
                let mut k = KernelTrace::new(
                    format!("kernel_{ki}"),
                    (nblocks, 1, 1),
                    (32 * warps.len() as u32, 1, 1),
                );
                for _ in 0..nblocks {
                    let b = k.push_block();
                    for winsts in &warps {
                        let warp: WarpTrace = winsts.iter().cloned().collect();
                        *b.push_warp() = warp;
                    }
                }
                k
            })
            .collect();
        ApplicationTrace::new("prop_app", ks)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_preserves_everything(app in arb_app()) {
        let text = app.to_trace_text();
        let parsed = ApplicationTrace::parse(&text).expect("round trip parse");
        prop_assert_eq!(&parsed, &app);
        prop_assert_eq!(parsed.stats(), app.stats());
    }

    #[test]
    fn binary_round_trip_preserves_everything(app in arb_app()) {
        let bytes = app.to_binary();
        let parsed = ApplicationTrace::from_binary(&bytes).expect("binary round trip");
        prop_assert_eq!(&parsed, &app);
    }

    #[test]
    fn binary_decoder_survives_random_bytes(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        // Arbitrary input must never panic the decoder.
        let _ = ApplicationTrace::from_binary(&bytes);
    }

    #[test]
    fn every_generated_instruction_is_well_formed(inst in arb_inst()) {
        prop_assert!(inst.is_well_formed());
    }

    #[test]
    fn strided_expansion_length_matches_mask(
        base in any::<u64>(),
        stride in 0u64..1024,
        lanes in 0u32..=32,
    ) {
        let list = AddressList::Strided { base, stride };
        prop_assert_eq!(list.expand(lanes).len(), lanes as usize);
    }
}
