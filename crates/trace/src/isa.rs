//! The traced instruction set.
//!
//! Swift-Sim is a performance model, not a functional simulator, so the
//! traced ISA captures what matters for timing: which execution unit an
//! instruction occupies, how long it runs uncontended, and whether it
//! touches memory. Opcode mnemonics follow NVIDIA SASS naming so traces read
//! naturally next to real NVBit output.

use crate::error::TraceError;
use std::fmt;

/// Memory space targeted by a load/store instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Global memory (device DRAM, cached in L1/L2).
    Global,
    /// Local (per-thread spill) memory; same hierarchy as global.
    Local,
    /// On-chip shared memory (scratchpad, banked).
    Shared,
    /// Constant memory (read-only, served by the constant cache).
    Const,
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Global => f.write_str("global"),
            MemSpace::Local => f.write_str("local"),
            MemSpace::Shared => f.write_str("shared"),
            MemSpace::Const => f.write_str("const"),
        }
    }
}

impl std::str::FromStr for MemSpace {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "global" => Ok(MemSpace::Global),
            "local" => Ok(MemSpace::Local),
            "shared" => Ok(MemSpace::Shared),
            "const" => Ok(MemSpace::Const),
            other => Err(TraceError::invalid_value("memory space", other)),
        }
    }
}

/// Coarse timing class of an opcode; determines which execution unit the
/// instruction occupies (Fig. 1's INT / SP / DP / SFU / tensor / LD-ST
/// split) plus control classes handled by the scheduler itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpcodeClass {
    /// Integer ALU.
    Int,
    /// Single-precision floating point.
    Sp,
    /// Double-precision floating point.
    Dp,
    /// Special-function unit (transcendentals).
    Sfu,
    /// Tensor core (matrix-multiply-accumulate).
    Tensor,
    /// Memory access through the LD/ST units.
    Memory,
    /// Control flow (branches) — resolved at issue.
    Control,
    /// Block-wide barrier.
    Barrier,
    /// Thread exit.
    Exit,
}

/// A traced SASS-style opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // mnemonics are documented as a group below
pub enum Opcode {
    // Integer pipe.
    Iadd,
    Imad,
    Imul,
    Isetp,
    Shf,
    Lop3,
    Mov,
    Shfl,
    // Single-precision pipe (CUDA cores).
    Fadd,
    Fmul,
    Ffma,
    Fsetp,
    // Double-precision pipe.
    Dadd,
    Dmul,
    Dfma,
    // Special-function unit.
    Mufu,
    // Tensor cores.
    Hmma,
    // Memory.
    Ldg,
    Stg,
    Ldl,
    Stl,
    Lds,
    Sts,
    Ldc,
    // Control.
    Bra,
    Bar,
    Exit,
    Nop,
}

impl Opcode {
    /// All opcodes, for iteration in tests and generators.
    pub const ALL: [Opcode; 28] = [
        Opcode::Iadd,
        Opcode::Imad,
        Opcode::Imul,
        Opcode::Isetp,
        Opcode::Shf,
        Opcode::Lop3,
        Opcode::Mov,
        Opcode::Shfl,
        Opcode::Fadd,
        Opcode::Fmul,
        Opcode::Ffma,
        Opcode::Fsetp,
        Opcode::Dadd,
        Opcode::Dmul,
        Opcode::Dfma,
        Opcode::Mufu,
        Opcode::Hmma,
        Opcode::Ldg,
        Opcode::Stg,
        Opcode::Ldl,
        Opcode::Stl,
        Opcode::Lds,
        Opcode::Sts,
        Opcode::Ldc,
        Opcode::Bra,
        Opcode::Bar,
        Opcode::Exit,
        Opcode::Nop,
    ];

    /// The timing class of this opcode.
    pub fn class(self) -> OpcodeClass {
        match self {
            Opcode::Iadd
            | Opcode::Imad
            | Opcode::Imul
            | Opcode::Isetp
            | Opcode::Shf
            | Opcode::Lop3
            | Opcode::Mov
            | Opcode::Shfl
            | Opcode::Nop => OpcodeClass::Int,
            Opcode::Fadd | Opcode::Fmul | Opcode::Ffma | Opcode::Fsetp => OpcodeClass::Sp,
            Opcode::Dadd | Opcode::Dmul | Opcode::Dfma => OpcodeClass::Dp,
            Opcode::Mufu => OpcodeClass::Sfu,
            Opcode::Hmma => OpcodeClass::Tensor,
            Opcode::Ldg
            | Opcode::Stg
            | Opcode::Ldl
            | Opcode::Stl
            | Opcode::Lds
            | Opcode::Sts
            | Opcode::Ldc => OpcodeClass::Memory,
            Opcode::Bra => OpcodeClass::Control,
            Opcode::Bar => OpcodeClass::Barrier,
            Opcode::Exit => OpcodeClass::Exit,
        }
    }

    /// For memory opcodes, the memory space accessed; `None` otherwise.
    pub fn mem_space(self) -> Option<MemSpace> {
        match self {
            Opcode::Ldg | Opcode::Stg => Some(MemSpace::Global),
            Opcode::Ldl | Opcode::Stl => Some(MemSpace::Local),
            Opcode::Lds | Opcode::Sts => Some(MemSpace::Shared),
            Opcode::Ldc => Some(MemSpace::Const),
            _ => None,
        }
    }

    /// Whether this opcode writes memory (as opposed to reading it).
    pub fn is_store(self) -> bool {
        matches!(self, Opcode::Stg | Opcode::Stl | Opcode::Sts)
    }

    /// Whether this opcode reads or writes memory.
    pub fn is_memory(self) -> bool {
        self.class() == OpcodeClass::Memory
    }

    /// The SASS-style mnemonic used in trace files.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Iadd => "IADD",
            Opcode::Imad => "IMAD",
            Opcode::Imul => "IMUL",
            Opcode::Isetp => "ISETP",
            Opcode::Shf => "SHF",
            Opcode::Lop3 => "LOP3",
            Opcode::Mov => "MOV",
            Opcode::Shfl => "SHFL",
            Opcode::Fadd => "FADD",
            Opcode::Fmul => "FMUL",
            Opcode::Ffma => "FFMA",
            Opcode::Fsetp => "FSETP",
            Opcode::Dadd => "DADD",
            Opcode::Dmul => "DMUL",
            Opcode::Dfma => "DFMA",
            Opcode::Mufu => "MUFU",
            Opcode::Hmma => "HMMA",
            Opcode::Ldg => "LDG",
            Opcode::Stg => "STG",
            Opcode::Ldl => "LDL",
            Opcode::Stl => "STL",
            Opcode::Lds => "LDS",
            Opcode::Sts => "STS",
            Opcode::Ldc => "LDC",
            Opcode::Bra => "BRA",
            Opcode::Bar => "BAR",
            Opcode::Exit => "EXIT",
            Opcode::Nop => "NOP",
        }
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl std::str::FromStr for Opcode {
    type Err = TraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Opcode::ALL
            .into_iter()
            .find(|op| op.mnemonic() == s)
            .ok_or_else(|| TraceError::invalid_value("opcode", s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonics_round_trip() {
        for op in Opcode::ALL {
            assert_eq!(op.mnemonic().parse::<Opcode>().unwrap(), op);
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in Opcode::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate mnemonic {}", op);
        }
    }

    #[test]
    fn memory_classification_consistent() {
        for op in Opcode::ALL {
            assert_eq!(op.is_memory(), op.mem_space().is_some());
            if op.is_store() {
                assert!(op.is_memory());
            }
        }
    }

    #[test]
    fn stores_and_loads_share_spaces() {
        assert_eq!(Opcode::Ldg.mem_space(), Opcode::Stg.mem_space());
        assert_eq!(Opcode::Lds.mem_space(), Opcode::Sts.mem_space());
        assert_eq!(Opcode::Ldl.mem_space(), Opcode::Stl.mem_space());
        assert!(!Opcode::Ldc.is_store());
    }

    #[test]
    fn unknown_opcode_errors() {
        assert!("FROB".parse::<Opcode>().is_err());
        assert!("iadd".parse::<Opcode>().is_err(), "mnemonics are uppercase");
    }

    #[test]
    fn mem_space_round_trip() {
        for space in [
            MemSpace::Global,
            MemSpace::Local,
            MemSpace::Shared,
            MemSpace::Const,
        ] {
            assert_eq!(space.to_string().parse::<MemSpace>().unwrap(), space);
        }
    }
}
