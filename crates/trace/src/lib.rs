//! Trace model and parser for the Swift-Sim GPU simulation framework.
//!
//! This crate is the second half of Swift-Sim's *Frontend* (§III-A of the
//! paper): the **Trace Parser**. The paper captures application traces on
//! real NVIDIA hardware with an extension of the NVBit binary-instrumentation
//! tool and translates them into a simulator-readable format. This crate
//! defines that format — an instruction-level, architecture-independent
//! kernel trace — together with a reader and writer for its on-disk text
//! representation (modeled after the Accel-Sim tracer's format).
//!
//! Traces are *independent of the simulated GPU architecture*: the same
//! trace drives the RTX 2080 Ti, RTX 3060, and RTX 3090 models, exactly as
//! in the paper.
//!
//! The object model mirrors the CUDA execution hierarchy:
//!
//! * [`ApplicationTrace`] — a list of kernel launches.
//! * [`KernelTrace`] — launch geometry plus one [`BlockTrace`] per thread
//!   block.
//! * [`BlockTrace`] — one [`WarpTrace`] per warp.
//! * [`WarpTrace`] — the dynamic [`TraceInstruction`] stream of one warp.
//!
//! Per-thread memory addresses are stored compressed ([`AddressList`]):
//! uniform-stride accesses (the overwhelmingly common case) take constant
//! space, irregular accesses store the full per-lane list.
//!
//! # Examples
//!
//! ```
//! use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};
//!
//! # fn main() -> Result<(), swiftsim_trace::TraceError> {
//! let mut kernel = KernelTrace::new("vecadd", (2, 1, 1), (64, 1, 1));
//! for block in 0u64..2 {
//!     let b = kernel.push_block();
//!     for w in 0u64..2 {
//!         let warp = b.push_warp();
//!         warp.push(InstBuilder::new(Opcode::Ldg).dst(2).src(1).global_strided(
//!             0x1000 + block * 0x100 + w * 0x80,
//!             4,
//!             4,
//!         ));
//!         warp.push(InstBuilder::new(Opcode::Fadd).dst(3).src(2).src(2));
//!         warp.push(InstBuilder::new(Opcode::Exit));
//!     }
//! }
//! let app = ApplicationTrace::new("vecadd_app", vec![kernel]);
//!
//! // Round-trip through the on-disk text format.
//! let text = app.to_trace_text();
//! let back = ApplicationTrace::parse(&text)?;
//! assert_eq!(app, back);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod binfmt;
mod cache;
mod error;
mod format;
mod inst;
mod isa;
mod kernel;
mod source;

pub use binfmt::ChunkedTraceWriter;
pub use cache::{kernel_approx_bytes, CachedTraceSource, DecodedKernelCache, KernelCacheStats};
pub use error::TraceError;
pub use inst::{AddressList, InstBuilder, MemInfo, Reg, TraceInstruction};
pub use isa::{MemSpace, Opcode, OpcodeClass};
pub use kernel::{ApplicationTrace, BlockTrace, Dim3, KernelTrace, TraceStats, WarpTrace};
pub use source::{open_trace, ChunkedTraceSource, KernelMeta, TextTraceSource, TraceSource};
