//! Shared decoded-kernel cache: a process-wide warm cache of decoded
//! [`KernelTrace`] bodies, keyed by `(trace content hash, kernel index)`.
//!
//! A one-shot simulation decodes each kernel exactly once, so it needs no
//! cache. A long-running *service* runs the same applications over and over
//! — every sweep axis re-simulates the same trace — and for file-backed
//! sources the per-kernel decode (disk read + parse + hash verify) is the
//! dominant setup cost. [`DecodedKernelCache`] memoizes decoded bodies
//! under an LRU byte budget; [`CachedTraceSource`] wraps any
//! [`TraceSource`] so the simulator transparently reads through the cache.
//!
//! Keys are *content* hashes ([`TraceSource::content_hash`]), not paths or
//! workload names: two jobs over different representations of the same
//! application (text file, chunked binary, in-memory) share entries, and a
//! file changed on disk can never serve stale kernels because its hash
//! moves.

use crate::error::TraceError;
use crate::kernel::KernelTrace;
use crate::source::{KernelMeta, TraceSource};
use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Rough heap footprint of a decoded kernel, for the cache's byte budget.
///
/// Counts the dominant terms — the per-instruction records and their
/// address lists — plus a fixed overhead per kernel/block/warp. An
/// estimate is fine here: the budget bounds memory growth, it is not an
/// allocator.
pub fn kernel_approx_bytes(kernel: &KernelTrace) -> usize {
    let mut bytes = 256 + kernel.name.len();
    for block in kernel.blocks() {
        bytes += 64;
        for warp in block.warps() {
            bytes += 64;
            for inst in warp.instructions() {
                bytes += std::mem::size_of_val(inst)
                    + inst.srcs.len() * std::mem::size_of::<crate::inst::Reg>();
                if let Some(mem) = &inst.mem {
                    if let crate::inst::AddressList::Explicit(addrs) = &mem.addresses {
                        bytes += addrs.len() * std::mem::size_of::<u64>();
                    }
                }
            }
        }
    }
    bytes
}

#[derive(Debug)]
struct Entry {
    kernel: Arc<KernelTrace>,
    bytes: usize,
    /// Monotonic last-use tick for LRU eviction.
    tick: u64,
}

#[derive(Debug, Default)]
struct CacheState {
    map: HashMap<(u64, usize), Entry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Cache hit/size statistics, snapshot at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KernelCacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to decode.
    pub misses: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Decoded kernels currently held.
    pub entries: usize,
    /// Estimated bytes currently held.
    pub bytes: usize,
}

/// A shared LRU cache of decoded kernel bodies with a byte budget.
///
/// Clone the [`Arc`] handle freely across threads; all users share one
/// budget. Kernels larger than the whole budget are decoded but not
/// retained.
#[derive(Debug)]
pub struct DecodedKernelCache {
    budget: usize,
    state: Mutex<CacheState>,
}

impl DecodedKernelCache {
    /// A cache bounded to roughly `budget_bytes` of decoded kernels.
    pub fn new(budget_bytes: usize) -> Arc<Self> {
        Arc::new(DecodedKernelCache {
            budget: budget_bytes,
            state: Mutex::new(CacheState::default()),
        })
    }

    /// The configured byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget
    }

    /// Fetch kernel `index` of the source identified by `source_hash`,
    /// decoding through `source` on a miss.
    ///
    /// # Errors
    ///
    /// Propagates the source's decode error on a miss; cached entries never
    /// error.
    pub fn get_or_decode(
        &self,
        source_hash: u64,
        index: usize,
        source: &dyn TraceSource,
    ) -> Result<Arc<KernelTrace>, TraceError> {
        let key = (source_hash, index);
        {
            let mut state = self.lock();
            state.tick += 1;
            let tick = state.tick;
            if let Some(entry) = state.map.get_mut(&key) {
                entry.tick = tick;
                let kernel = Arc::clone(&entry.kernel);
                state.hits += 1;
                return Ok(kernel);
            }
            state.misses += 1;
        }

        // Decode outside the lock: a slow disk read must not serialize
        // every other thread's cache hits. Two threads may race to decode
        // the same kernel; both get correct results and the second insert
        // simply replaces the first.
        let kernel = Arc::new(source.decode_kernel(index)?.into_owned());
        let bytes = kernel_approx_bytes(&kernel);
        if bytes <= self.budget {
            let mut state = self.lock();
            state.tick += 1;
            let tick = state.tick;
            let old = state.map.insert(
                key,
                Entry {
                    kernel: Arc::clone(&kernel),
                    bytes,
                    tick,
                },
            );
            state.bytes += bytes;
            if let Some(old) = old {
                state.bytes -= old.bytes;
            }
            // Evict least-recently-used entries until under budget.
            while state.bytes > self.budget {
                let Some((&victim, _)) = state
                    .map
                    .iter()
                    .filter(|(&k, _)| k != key)
                    .min_by_key(|(_, e)| e.tick)
                else {
                    break;
                };
                let removed = state.map.remove(&victim).expect("victim exists");
                state.bytes -= removed.bytes;
                state.evictions += 1;
            }
        }
        Ok(kernel)
    }

    /// Current statistics.
    pub fn stats(&self) -> KernelCacheStats {
        let state = self.lock();
        KernelCacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            entries: state.map.len(),
            bytes: state.bytes,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// A [`TraceSource`] that reads kernel bodies through a shared
/// [`DecodedKernelCache`].
///
/// Metadata queries pass straight through; [`TraceSource::decode_kernel`]
/// consults the cache first. Cache hits clone the kernel out of the shared
/// [`Arc`] — a memcpy of the instruction vectors, which is still far
/// cheaper than a disk read + parse + verify for file-backed sources.
pub struct CachedTraceSource {
    inner: Arc<dyn TraceSource>,
    cache: Arc<DecodedKernelCache>,
    hash: u64,
}

impl CachedTraceSource {
    /// Wrap `inner` so its kernel decodes go through `cache`.
    ///
    /// # Errors
    ///
    /// Returns the inner source's [`TraceSource::content_hash`] error (the
    /// hash is the cache key, so it is computed eagerly).
    pub fn new(
        inner: Arc<dyn TraceSource>,
        cache: Arc<DecodedKernelCache>,
    ) -> Result<Self, TraceError> {
        let hash = inner.content_hash()?;
        Ok(CachedTraceSource { inner, cache, hash })
    }

    /// The wrapped source.
    pub fn inner(&self) -> &Arc<dyn TraceSource> {
        &self.inner
    }
}

impl TraceSource for CachedTraceSource {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn num_kernels(&self) -> usize {
        self.inner.num_kernels()
    }

    fn kernel_meta(&self, index: usize) -> KernelMeta {
        self.inner.kernel_meta(index)
    }

    fn decode_kernel(&self, index: usize) -> Result<Cow<'_, KernelTrace>, TraceError> {
        let kernel = self
            .cache
            .get_or_decode(self.hash, index, self.inner.as_ref())?;
        Ok(Cow::Owned(kernel.as_ref().clone()))
    }

    fn content_hash(&self) -> Result<u64, TraceError> {
        Ok(self.hash)
    }

    fn prefers_prefetch(&self) -> bool {
        // A warm cache makes decode cheap, but a cold one still pays the
        // inner source's cost; keep the inner source's preference.
        self.inner.prefers_prefetch()
    }

    fn total_insts(&self) -> u64 {
        self.inner.total_insts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstBuilder;
    use crate::isa::Opcode;
    use crate::kernel::ApplicationTrace;

    fn app(name: &str, kernels: usize, insts_per_kernel: usize) -> ApplicationTrace {
        let mut ks = Vec::new();
        for k in 0..kernels {
            let mut kernel = KernelTrace::new(format!("k{k}"), (1, 1, 1), (32, 1, 1));
            let block = kernel.push_block();
            let warp = block.push_warp();
            for i in 0..insts_per_kernel.saturating_sub(1) {
                warp.push(
                    InstBuilder::new(Opcode::Iadd)
                        .pc(16 * i as u32)
                        .dst(1)
                        .src(1),
                );
            }
            warp.push(InstBuilder::new(Opcode::Exit).pc(16 * insts_per_kernel as u32));
            ks.push(kernel);
        }
        ApplicationTrace::new(name, ks)
    }

    #[test]
    fn hits_after_first_decode() {
        let a: Arc<dyn TraceSource> = Arc::new(app("a", 2, 8));
        let cache = DecodedKernelCache::new(1 << 20);
        let src = CachedTraceSource::new(Arc::clone(&a), Arc::clone(&cache)).unwrap();

        let k0 = src.decode_kernel(0).unwrap().into_owned();
        let again = src.decode_kernel(0).unwrap().into_owned();
        assert_eq!(k0, again);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
        assert!(stats.bytes > 0);

        // The cached decode equals the direct decode.
        assert_eq!(&k0, &*a.decode_kernel(0).unwrap());
    }

    #[test]
    fn sources_with_equal_content_share_entries() {
        let a: Arc<dyn TraceSource> = Arc::new(app("same", 1, 8));
        let b: Arc<dyn TraceSource> = Arc::new(
            crate::source::TextTraceSource::from_text(app("same", 1, 8).to_trace_text()).unwrap(),
        );
        let cache = DecodedKernelCache::new(1 << 20);
        let sa = CachedTraceSource::new(a, Arc::clone(&cache)).unwrap();
        let sb = CachedTraceSource::new(b, Arc::clone(&cache)).unwrap();
        assert_eq!(sa.content_hash().unwrap(), sb.content_hash().unwrap());

        sa.decode_kernel(0).unwrap();
        sb.decode_kernel(0).unwrap();
        let stats = cache.stats();
        assert_eq!(
            (stats.hits, stats.misses),
            (1, 1),
            "text representation hits the in-memory source's entry"
        );
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        let a: Arc<dyn TraceSource> = Arc::new(app("a", 4, 64));
        let one_kernel = kernel_approx_bytes(&a.decode_kernel(0).unwrap());
        // Room for about two kernels.
        let cache = DecodedKernelCache::new(one_kernel * 2 + one_kernel / 2);
        let src = CachedTraceSource::new(Arc::clone(&a), Arc::clone(&cache)).unwrap();

        for i in 0..4 {
            src.decode_kernel(i).unwrap();
        }
        let stats = cache.stats();
        assert!(stats.bytes <= cache.budget_bytes(), "{stats:?}");
        assert!(stats.entries <= 2, "{stats:?}");
        assert!(stats.evictions >= 2, "{stats:?}");

        // Most-recently-used kernel 3 must still be resident.
        src.decode_kernel(3).unwrap();
        assert_eq!(cache.stats().hits, 1);
    }

    #[test]
    fn oversized_kernels_pass_through_without_residency() {
        let a: Arc<dyn TraceSource> = Arc::new(app("big", 1, 128));
        let cache = DecodedKernelCache::new(16); // smaller than any kernel
        let src = CachedTraceSource::new(Arc::clone(&a), Arc::clone(&cache)).unwrap();
        let k = src.decode_kernel(0).unwrap();
        assert_eq!(k.num_insts(), 128);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
    }

    #[test]
    fn concurrent_readers_agree() {
        let a: Arc<dyn TraceSource> = Arc::new(app("c", 3, 16));
        let cache = DecodedKernelCache::new(1 << 20);
        let src = Arc::new(CachedTraceSource::new(Arc::clone(&a), cache).unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let src = Arc::clone(&src);
                let a = Arc::clone(&a);
                s.spawn(move || {
                    for i in 0..3 {
                        let got = src.decode_kernel(i).unwrap().into_owned();
                        assert_eq!(got, *a.decode_kernel(i).unwrap());
                    }
                });
            }
        });
    }
}
