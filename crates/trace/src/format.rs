//! On-disk text format for application traces.
//!
//! The format is line-oriented, in the spirit of the Accel-Sim tracer's
//! `.trace` files:
//!
//! ```text
//! app bfs
//! kernel bfs_kernel
//! grid 16 1 1
//! block 256 1 1
//! shmem 0
//! regs 24
//! block_begin
//! warp_begin
//! 0000 IADD D:R1 S:R2 S:R3 M:ffffffff
//! 0010 LDG D:R4 S:R1 M:ffffffff global W:4 ST:1000:4
//! 0020 STG S:R4 M:0000ffff global W:4 AD:80,a0,c0,...
//! warp_end
//! block_end
//! kernel_end
//! ```
//!
//! Instruction lines are `<pc-hex> <opcode>` followed by register tokens
//! (`D:`/`S:` prefixed), the active mask (`M:` hex), and — for memory
//! opcodes — the space, the per-thread width (`W:`), and either a strided
//! address descriptor (`ST:base:stride`, both hex) or an explicit list
//! (`AD:` comma-separated hex).

use crate::error::TraceError;
use crate::inst::{AddressList, MemInfo, Reg, TraceInstruction};
use crate::isa::Opcode;
use crate::kernel::{ApplicationTrace, BlockTrace, Dim3, KernelTrace, WarpTrace};
use std::fmt::Write as _;

impl ApplicationTrace {
    /// Serialize to the text trace format.
    pub fn to_trace_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "app {}", self.name);
        for kernel in self.kernels() {
            let _ = writeln!(out, "kernel {}", kernel.name);
            let _ = writeln!(out, "grid {}", kernel.grid_dim);
            let _ = writeln!(out, "block {}", kernel.block_dim);
            let _ = writeln!(out, "shmem {}", kernel.shared_mem_bytes);
            let _ = writeln!(out, "regs {}", kernel.regs_per_thread);
            for block in kernel.blocks() {
                let _ = writeln!(out, "block_begin");
                for warp in block.warps() {
                    let _ = writeln!(out, "warp_begin");
                    for inst in warp {
                        write_inst(&mut out, inst);
                    }
                    let _ = writeln!(out, "warp_end");
                }
                let _ = writeln!(out, "block_end");
            }
            let _ = writeln!(out, "kernel_end");
        }
        out
    }

    /// Parse from the text trace format.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] on malformed lines, unknown opcodes, register
    /// or mask tokens outside their domain, inconsistent address lists, or
    /// truncated sections.
    pub fn parse(text: &str) -> Result<ApplicationTrace, TraceError> {
        Parser::new(text).parse_app()
    }

    /// Write the trace to `path` in the text format.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] carrying `path` on any I/O failure.
    pub fn write_to_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_trace_text()).map_err(|e| TraceError::io(path, &e))
    }

    /// Read a trace from `path`, eagerly parsing every kernel. For lazy
    /// per-kernel parsing, use [`crate::TextTraceSource`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] carrying `path` when the file cannot be
    /// read, or the parse error otherwise.
    pub fn read_from_file(
        path: impl AsRef<std::path::Path>,
    ) -> Result<ApplicationTrace, TraceError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| TraceError::io(path, &e))?;
        ApplicationTrace::parse(&text)
    }
}

/// Parse one kernel from a text slice beginning at its `kernel` line.
/// `line_offset` is the 0-based line number of the slice's first line in
/// the enclosing file, so parse errors report whole-file line numbers.
/// Used by [`crate::TextTraceSource`] for lazy per-kernel decode.
pub(crate) fn parse_kernel_text(text: &str, line_offset: usize) -> Result<KernelTrace, TraceError> {
    let mut parser = Parser::with_offset(text, line_offset);
    let kernel = parser.parse_kernel()?;
    if let Some((no, line)) = parser.next_line() {
        return Err(TraceError::parse(
            no,
            format!("unexpected content after kernel_end: {line:?}"),
        ));
    }
    Ok(kernel)
}

fn write_inst(out: &mut String, inst: &TraceInstruction) {
    let _ = write!(out, "{:04x} {}", inst.pc, inst.opcode);
    if let Some(dst) = inst.dst {
        let _ = write!(out, " D:{dst}");
    }
    for src in &inst.srcs {
        let _ = write!(out, " S:{src}");
    }
    let _ = write!(out, " M:{:08x}", inst.active_mask);
    if let Some(mem) = &inst.mem {
        let _ = write!(out, " {} W:{}", mem.space, mem.width);
        match &mem.addresses {
            AddressList::Strided { base, stride } => {
                let _ = write!(out, " ST:{base:x}:{stride:x}");
            }
            AddressList::Explicit(addrs) => {
                let _ = write!(out, " AD:");
                for (i, a) in addrs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{a:x}");
                }
            }
        }
    }
    out.push('\n');
}

struct Parser<'a> {
    lines: std::iter::Enumerate<std::str::Lines<'a>>,
    line_offset: usize,
    peeked: Option<(usize, &'a str)>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser::with_offset(text, 0)
    }

    fn with_offset(text: &'a str, line_offset: usize) -> Self {
        Parser {
            lines: text.lines().enumerate(),
            line_offset,
            peeked: None,
        }
    }

    /// Next non-empty, non-comment line with its 1-based number.
    fn next_line(&mut self) -> Option<(usize, &'a str)> {
        if let Some(item) = self.peeked.take() {
            return Some(item);
        }
        for (idx, raw) in self.lines.by_ref() {
            let line = match raw.find('#') {
                Some(pos) => &raw[..pos],
                None => raw,
            }
            .trim();
            if !line.is_empty() {
                return Some((self.line_offset + idx + 1, line));
            }
        }
        None
    }

    fn peek_line(&mut self) -> Option<(usize, &'a str)> {
        if self.peeked.is_none() {
            self.peeked = self.next_line();
        }
        self.peeked
    }

    fn expect_keyword(
        &mut self,
        keyword: &str,
        section: &str,
    ) -> Result<(usize, &'a str), TraceError> {
        let (no, line) = self
            .next_line()
            .ok_or_else(|| TraceError::eof(section.to_owned()))?;
        match line.strip_prefix(keyword) {
            Some(rest) if rest.is_empty() || rest.starts_with(char::is_whitespace) => {
                Ok((no, rest.trim()))
            }
            _ => Err(TraceError::parse(
                no,
                format!("expected {keyword:?}, found {line:?}"),
            )),
        }
    }

    fn parse_app(&mut self) -> Result<ApplicationTrace, TraceError> {
        let (_, name) = self.expect_keyword("app", "application header")?;
        let name = name.to_owned();
        let mut kernels = Vec::new();
        while let Some((_, line)) = self.peek_line() {
            if line.starts_with("kernel") {
                kernels.push(self.parse_kernel()?);
            } else {
                let (no, line) = self.next_line().expect("peeked");
                return Err(TraceError::parse(
                    no,
                    format!("expected \"kernel\", found {line:?}"),
                ));
            }
        }
        Ok(ApplicationTrace::new(name, kernels))
    }

    fn parse_kernel(&mut self) -> Result<KernelTrace, TraceError> {
        let (_, name) = self.expect_keyword("kernel", "kernel header")?;
        let name = name.to_owned();
        let (no, grid) = self.expect_keyword("grid", "kernel header")?;
        let grid_dim = parse_dim3(no, grid)?;
        let (no, block) = self.expect_keyword("block", "kernel header")?;
        let block_dim = parse_dim3(no, block)?;
        let (no, shmem) = self.expect_keyword("shmem", "kernel header")?;
        let shared_mem_bytes = parse_u32(no, shmem, "shared memory size")?;
        let (no, regs) = self.expect_keyword("regs", "kernel header")?;
        let regs_per_thread = parse_u32(no, regs, "register count")?;

        let mut kernel = KernelTrace::new(name, grid_dim, block_dim);
        kernel.shared_mem_bytes = shared_mem_bytes;
        kernel.regs_per_thread = regs_per_thread;

        loop {
            let (no, line) = self
                .peek_line()
                .ok_or_else(|| TraceError::eof("kernel".to_owned()))?;
            match line {
                "block_begin" => {
                    self.next_line();
                    kernel.push_block_trace(self.parse_block()?);
                }
                "kernel_end" => {
                    self.next_line();
                    return Ok(kernel);
                }
                other => {
                    return Err(TraceError::parse(
                        no,
                        format!("expected \"block_begin\" or \"kernel_end\", found {other:?}"),
                    ))
                }
            }
        }
    }

    fn parse_block(&mut self) -> Result<BlockTrace, TraceError> {
        let mut block = BlockTrace::new();
        loop {
            let (no, line) = self
                .peek_line()
                .ok_or_else(|| TraceError::eof("block".to_owned()))?;
            match line {
                "warp_begin" => {
                    self.next_line();
                    let warp = self.parse_warp()?;
                    *block.push_warp() = warp;
                }
                "block_end" => {
                    self.next_line();
                    return Ok(block);
                }
                other => {
                    return Err(TraceError::parse(
                        no,
                        format!("expected \"warp_begin\" or \"block_end\", found {other:?}"),
                    ))
                }
            }
        }
    }

    fn parse_warp(&mut self) -> Result<WarpTrace, TraceError> {
        let mut warp = WarpTrace::new();
        loop {
            let (no, line) = self
                .next_line()
                .ok_or_else(|| TraceError::eof("warp".to_owned()))?;
            if line == "warp_end" {
                return Ok(warp);
            }
            warp.push(parse_inst(no, line)?);
        }
    }
}

pub(crate) fn parse_dim3(no: usize, s: &str) -> Result<Dim3, TraceError> {
    let mut it = s.split_whitespace();
    let mut next = |what: &str| -> Result<u32, TraceError> {
        let tok = it
            .next()
            .ok_or_else(|| TraceError::parse(no, format!("missing {what} dimension")))?;
        tok.parse()
            .map_err(|_| TraceError::invalid_value(format!("{what} dimension"), tok))
    };
    let dim = Dim3::new(next("x")?, next("y")?, next("z")?);
    if it.next().is_some() {
        return Err(TraceError::parse(no, "too many dimension components"));
    }
    Ok(dim)
}

pub(crate) fn parse_u32(no: usize, s: &str, what: &str) -> Result<u32, TraceError> {
    s.parse()
        .map_err(|_| TraceError::parse(no, format!("invalid {what}: {s:?}")))
}

fn parse_reg(token: &str) -> Result<Reg, TraceError> {
    let body = token
        .strip_prefix('R')
        .ok_or_else(|| TraceError::invalid_value("register", token))?;
    body.parse::<u16>()
        .map(Reg)
        .map_err(|_| TraceError::invalid_value("register", token))
}

fn parse_inst(no: usize, line: &str) -> Result<TraceInstruction, TraceError> {
    let mut tokens = line.split_whitespace();
    let pc_tok = tokens
        .next()
        .ok_or_else(|| TraceError::parse(no, "empty instruction"))?;
    let pc = u32::from_str_radix(pc_tok, 16)
        .map_err(|_| TraceError::invalid_value("program counter", pc_tok))?;
    let op_tok = tokens
        .next()
        .ok_or_else(|| TraceError::parse(no, "instruction missing opcode"))?;
    let opcode: Opcode = op_tok.parse()?;

    let mut dst = None;
    let mut srcs = Vec::new();
    let mut active_mask = None;
    let mut mem_space = None;
    let mut width = None;
    let mut addresses = None;

    for tok in tokens {
        if let Some(r) = tok.strip_prefix("D:") {
            if dst.replace(parse_reg(r)?).is_some() {
                return Err(TraceError::parse(no, "multiple destination registers"));
            }
        } else if let Some(r) = tok.strip_prefix("S:") {
            srcs.push(parse_reg(r)?);
        } else if let Some(m) = tok.strip_prefix("M:") {
            let mask = u32::from_str_radix(m, 16)
                .map_err(|_| TraceError::invalid_value("active mask", m))?;
            if active_mask.replace(mask).is_some() {
                return Err(TraceError::parse(no, "multiple active masks"));
            }
        } else if let Some(w) = tok.strip_prefix("W:") {
            let w: u8 = w
                .parse()
                .map_err(|_| TraceError::invalid_value("access width", w))?;
            width = Some(w);
        } else if let Some(st) = tok.strip_prefix("ST:") {
            let (base, stride) = st
                .split_once(':')
                .ok_or_else(|| TraceError::invalid_value("strided address", st))?;
            let base = u64::from_str_radix(base, 16)
                .map_err(|_| TraceError::invalid_value("address base", base))?;
            let stride = u64::from_str_radix(stride, 16)
                .map_err(|_| TraceError::invalid_value("address stride", stride))?;
            addresses = Some(AddressList::Strided { base, stride });
        } else if let Some(ad) = tok.strip_prefix("AD:") {
            let addrs = ad
                .split(',')
                .map(|a| {
                    u64::from_str_radix(a, 16).map_err(|_| TraceError::invalid_value("address", a))
                })
                .collect::<Result<Vec<u64>, TraceError>>()?;
            addresses = Some(AddressList::Explicit(addrs));
        } else if let Ok(space) = tok.parse() {
            mem_space = Some(space);
        } else {
            return Err(TraceError::parse(no, format!("unrecognized token {tok:?}")));
        }
    }

    let active_mask =
        active_mask.ok_or_else(|| TraceError::parse(no, "instruction missing active mask"))?;

    let mem = match (mem_space, width, addresses) {
        (None, None, None) => None,
        (Some(space), Some(width), Some(addresses)) => Some(MemInfo {
            space,
            width,
            addresses,
        }),
        _ => {
            return Err(TraceError::parse(
                no,
                "memory instruction needs space, W: width and ST:/AD: addresses together",
            ))
        }
    };

    let inst = TraceInstruction {
        pc,
        opcode,
        dst,
        srcs,
        active_mask,
        mem,
    };
    if !inst.is_well_formed() {
        return Err(TraceError::parse(
            no,
            format!("instruction is inconsistent with opcode {}", inst.opcode),
        ));
    }
    Ok(inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstBuilder;

    fn sample_app() -> ApplicationTrace {
        let mut kernel = KernelTrace::new("k0", (1, 2, 1), (64, 1, 1));
        kernel.shared_mem_bytes = 4096;
        kernel.regs_per_thread = 40;
        for blk in 0..2 {
            let b = kernel.push_block();
            for w in 0..2 {
                let warp = b.push_warp();
                warp.push(
                    InstBuilder::new(Opcode::Ldg)
                        .pc(0x10)
                        .dst(4)
                        .src(1)
                        .global_strided(0x1_0000 + blk * 0x100 + w * 0x80, 4, 4),
                );
                warp.push(InstBuilder::new(Opcode::Ffma).pc(0x20).dst(5).src(4).src(4));
                warp.push(
                    InstBuilder::new(Opcode::Stg)
                        .pc(0x30)
                        .src(5)
                        .explicit_addrs(vec![0x40, 0x80, 0xc0, 0x99], 4),
                );
                warp.push(InstBuilder::new(Opcode::Bar).pc(0x40));
                warp.push(InstBuilder::new(Opcode::Exit).pc(0x50).mask(0xffff));
            }
        }
        let mut k1 = KernelTrace::new("k1", (1, 1, 1), (32, 1, 1));
        let b = k1.push_block();
        let warp = b.push_warp();
        warp.push(
            InstBuilder::new(Opcode::Lds)
                .pc(0)
                .dst(2)
                .src(1)
                .global_strided(0, 4, 4),
        );
        warp.push(InstBuilder::new(Opcode::Exit).pc(0x10));
        ApplicationTrace::new("sample", vec![kernel, k1])
    }

    #[test]
    fn round_trip() {
        let app = sample_app();
        let text = app.to_trace_text();
        let parsed = ApplicationTrace::parse(&text).expect("parse");
        assert_eq!(parsed, app);
    }

    #[test]
    fn round_trip_preserves_stats() {
        let app = sample_app();
        let parsed = ApplicationTrace::parse(&app.to_trace_text()).unwrap();
        assert_eq!(parsed.stats(), app.stats());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = format!("# header\n\n{}\n# trailer\n", sample_app().to_trace_text());
        assert_eq!(ApplicationTrace::parse(&text).unwrap(), sample_app());
    }

    #[test]
    fn missing_mask_rejected() {
        let text = "app a\nkernel k\ngrid 1 1 1\nblock 32 1 1\nshmem 0\nregs 8\n\
                    block_begin\nwarp_begin\n0000 IADD D:R1\nwarp_end\nblock_end\nkernel_end\n";
        let err = ApplicationTrace::parse(text).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 9, .. }), "{err}");
    }

    #[test]
    fn truncated_warp_rejected() {
        let text = "app a\nkernel k\ngrid 1 1 1\nblock 32 1 1\nshmem 0\nregs 8\n\
                    block_begin\nwarp_begin\n0000 IADD M:ffffffff\n";
        assert_eq!(
            ApplicationTrace::parse(text).unwrap_err(),
            TraceError::UnexpectedEof("warp".to_owned())
        );
    }

    #[test]
    fn unknown_opcode_rejected() {
        let text = "app a\nkernel k\ngrid 1 1 1\nblock 32 1 1\nshmem 0\nregs 8\n\
                    block_begin\nwarp_begin\n0000 FROB M:ffffffff\nwarp_end\nblock_end\nkernel_end\n";
        assert!(matches!(
            ApplicationTrace::parse(text).unwrap_err(),
            TraceError::InvalidValue { .. }
        ));
    }

    #[test]
    fn memory_opcode_without_addresses_rejected() {
        let text = "app a\nkernel k\ngrid 1 1 1\nblock 32 1 1\nshmem 0\nregs 8\n\
                    block_begin\nwarp_begin\n0000 LDG D:R1 M:ffffffff\nwarp_end\nblock_end\nkernel_end\n";
        assert!(ApplicationTrace::parse(text).is_err());
    }

    #[test]
    fn explicit_list_length_mismatch_rejected() {
        // Mask has 32 lanes but only 2 addresses.
        let text = "app a\nkernel k\ngrid 1 1 1\nblock 32 1 1\nshmem 0\nregs 8\n\
                    block_begin\nwarp_begin\n0000 LDG D:R1 M:ffffffff global W:4 AD:10,20\n\
                    warp_end\nblock_end\nkernel_end\n";
        assert!(ApplicationTrace::parse(text).is_err());
    }

    #[test]
    fn wrong_space_for_opcode_rejected() {
        // LDS is shared-memory but the line claims global.
        let text = "app a\nkernel k\ngrid 1 1 1\nblock 32 1 1\nshmem 0\nregs 8\n\
                    block_begin\nwarp_begin\n0000 LDS D:R1 M:ffffffff global W:4 ST:0:4\n\
                    warp_end\nblock_end\nkernel_end\n";
        assert!(ApplicationTrace::parse(text).is_err());
    }

    #[test]
    fn empty_app_parses() {
        let app = ApplicationTrace::parse("app nothing\n").unwrap();
        assert_eq!(app.name, "nothing");
        assert!(app.kernels().is_empty());
    }

    #[test]
    fn garbage_after_header_rejected() {
        assert!(ApplicationTrace::parse("app a\nwidget w\n").is_err());
    }

    #[test]
    fn file_round_trip() {
        let app = sample_app();
        let dir = std::env::temp_dir().join("swiftsim_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.sstrace");
        app.write_to_file(&path).unwrap();
        let back = ApplicationTrace::read_from_file(&path).unwrap();
        assert_eq!(back, app);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_from_file_surfaces_parse_errors() {
        let dir = std::env::temp_dir().join("swiftsim_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.sstrace");
        std::fs::write(&path, "not a trace").unwrap();
        let err = ApplicationTrace::read_from_file(&path).unwrap_err();
        assert!(matches!(err, TraceError::Parse { .. }), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_with_path() {
        let err = ApplicationTrace::read_from_file("/definitely/not/here.sstrace").unwrap_err();
        match &err {
            TraceError::Io { path, kind, .. } => {
                assert!(path.contains("here.sstrace"), "{err}");
                assert_eq!(*kind, std::io::ErrorKind::NotFound);
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn parse_kernel_text_offsets_line_numbers() {
        let app = sample_app();
        let text = app.to_trace_text();
        // Slice out the first kernel (from its "kernel" line to "kernel_end").
        let start = text.find("kernel ").unwrap();
        let end = text.find("kernel_end\n").unwrap() + "kernel_end\n".len();
        let offset = text[..start].lines().count();
        let kernel = parse_kernel_text(&text[start..end], offset).unwrap();
        assert_eq!(&kernel, &app.kernels()[0]);

        // A parse error inside the slice reports the whole-file line number.
        let broken = "kernel k\ngrid 1 1 1\nblock 32 1 1\nshmem 0\nregs 8\nwidget\nkernel_end\n";
        let err = parse_kernel_text(broken, 100).unwrap_err();
        assert!(matches!(err, TraceError::Parse { line: 106, .. }), "{err}");
    }
}
