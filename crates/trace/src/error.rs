//! Error type for trace parsing.

use std::fmt;

/// Error produced while parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A trace line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A token was outside its domain (unknown opcode, bad register, ...).
    InvalidValue {
        /// What was being parsed.
        what: String,
        /// The offending token.
        value: String,
    },
    /// The file ended inside a kernel, block, or warp section.
    UnexpectedEof(
        /// The section that was left open.
        String,
    ),
    /// A file could not be read or written.
    ///
    /// All trace file I/O (`write_to_file`, `read_from_file`,
    /// `write_binary_file`, `read_binary_file`, [`crate::open_trace`])
    /// routes through this variant, so callers always learn *which* path
    /// failed.
    Io {
        /// The offending path.
        path: String,
        /// The OS error category.
        kind: std::io::ErrorKind,
        /// The rendered OS error.
        message: String,
    },
}

impl TraceError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        TraceError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn invalid_value(what: impl Into<String>, value: impl Into<String>) -> Self {
        TraceError::InvalidValue {
            what: what.into(),
            value: value.into(),
        }
    }

    pub(crate) fn eof(section: impl Into<String>) -> Self {
        TraceError::UnexpectedEof(section.into())
    }

    /// Wrap an I/O failure on `path`.
    pub fn io(path: impl AsRef<std::path::Path>, err: &std::io::Error) -> Self {
        TraceError::Io {
            path: path.as_ref().display().to_string(),
            kind: err.kind(),
            message: err.to_string(),
        }
    }

    /// The [`std::io::ErrorKind`] of an [`TraceError::Io`], if that is what
    /// this error is.
    pub fn io_kind(&self) -> Option<std::io::ErrorKind> {
        match self {
            TraceError::Io { kind, .. } => Some(*kind),
            _ => None,
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, message } => write!(f, "trace line {line}: {message}"),
            TraceError::InvalidValue { what, value } => write!(f, "invalid {what}: {value:?}"),
            TraceError::UnexpectedEof(section) => {
                write!(f, "unexpected end of trace inside {section}")
            }
            TraceError::Io {
                path,
                kind,
                message,
            } => {
                // The kind token (`NotFound`, `PermissionDenied`, ...) is
                // part of the rendered text so logs that only keep the
                // string — daemon logs, campaign failure rows — still
                // distinguish I/O error categories.
                write!(f, "trace file {path} ({kind:?}): {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

impl From<TraceError> for std::io::Error {
    fn from(e: TraceError) -> Self {
        let kind = e.io_kind().unwrap_or(std::io::ErrorKind::InvalidData);
        std::io::Error::new(kind, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            TraceError::parse(3, "bad token").to_string(),
            "trace line 3: bad token"
        );
        assert_eq!(
            TraceError::eof("warp").to_string(),
            "unexpected end of trace inside warp"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
