//! Error type for trace parsing.

use std::fmt;

/// Error produced while parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// A trace line could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Explanation of the problem.
        message: String,
    },
    /// A token was outside its domain (unknown opcode, bad register, ...).
    InvalidValue {
        /// What was being parsed.
        what: String,
        /// The offending token.
        value: String,
    },
    /// The file ended inside a kernel, block, or warp section.
    UnexpectedEof(
        /// The section that was left open.
        String,
    ),
}

impl TraceError {
    pub(crate) fn parse(line: usize, message: impl Into<String>) -> Self {
        TraceError::Parse {
            line,
            message: message.into(),
        }
    }

    pub(crate) fn invalid_value(what: impl Into<String>, value: impl Into<String>) -> Self {
        TraceError::InvalidValue {
            what: what.into(),
            value: value.into(),
        }
    }

    pub(crate) fn eof(section: impl Into<String>) -> Self {
        TraceError::UnexpectedEof(section.into())
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Parse { line, message } => write!(f, "trace line {line}: {message}"),
            TraceError::InvalidValue { what, value } => write!(f, "invalid {what}: {value:?}"),
            TraceError::UnexpectedEof(section) => {
                write!(f, "unexpected end of trace inside {section}")
            }
        }
    }
}

impl std::error::Error for TraceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            TraceError::parse(3, "bad token").to_string(),
            "trace line 3: bad token"
        );
        assert_eq!(
            TraceError::eof("warp").to_string(),
            "unexpected end of trace inside warp"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TraceError>();
    }
}
