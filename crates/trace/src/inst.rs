//! Dynamic trace instructions and compressed per-thread address lists.

use crate::isa::{MemSpace, Opcode};
use std::fmt;

/// An architectural register number.
///
/// Registers only matter to the performance model through data dependences
/// (the scoreboard), so a bare index is sufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "R{}", self.0)
    }
}

impl From<u16> for Reg {
    fn from(value: u16) -> Self {
        Reg(value)
    }
}

/// Per-thread addresses of a memory instruction, compressed.
///
/// NVBit-style traces record one address per active thread. Storing 32
/// addresses per instruction explodes trace size, so — like the Accel-Sim
/// trace format — the common base+stride pattern is stored in constant
/// space.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum AddressList {
    /// Lane `i` (counting only *active* lanes, in ascending lane order)
    /// accesses `base + i * stride`.
    Strided {
        /// Address accessed by the first active lane.
        base: u64,
        /// Byte distance between consecutive active lanes.
        stride: u64,
    },
    /// Explicit per-active-lane addresses, ascending lane order. The length
    /// must equal the number of set bits in the instruction's active mask.
    Explicit(Vec<u64>),
}

impl AddressList {
    /// Expand to one address per active lane.
    ///
    /// `active_lanes` is the number of set bits in the active mask. For
    /// [`AddressList::Explicit`] the stored list is returned as-is (callers
    /// validate length at construction).
    pub fn expand(&self, active_lanes: u32) -> Vec<u64> {
        match self {
            AddressList::Strided { base, stride } => (0..u64::from(active_lanes))
                .map(|i| base.wrapping_add(i * stride))
                .collect(),
            AddressList::Explicit(addrs) => addrs.clone(),
        }
    }

    /// Number of addresses this list yields for `active_lanes` active lanes.
    pub fn len(&self, active_lanes: u32) -> usize {
        match self {
            AddressList::Strided { .. } => active_lanes as usize,
            AddressList::Explicit(addrs) => addrs.len(),
        }
    }

    /// Whether the list yields no addresses.
    pub fn is_empty(&self, active_lanes: u32) -> bool {
        self.len(active_lanes) == 0
    }
}

/// Memory-access payload of a load/store instruction.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MemInfo {
    /// Memory space accessed.
    pub space: MemSpace,
    /// Access width per thread in bytes (1, 2, 4, 8, or 16).
    pub width: u8,
    /// Per-thread addresses.
    pub addresses: AddressList,
}

/// One dynamic instruction of one warp.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TraceInstruction {
    /// Program counter (byte offset of the instruction in the kernel).
    pub pc: u32,
    /// Opcode.
    pub opcode: Opcode,
    /// Destination register, if the instruction writes one.
    pub dst: Option<Reg>,
    /// Source registers (data dependences).
    pub srcs: Vec<Reg>,
    /// 32-bit lane mask of threads executing this instruction.
    pub active_mask: u32,
    /// Memory payload for load/store opcodes.
    pub mem: Option<MemInfo>,
}

impl TraceInstruction {
    /// Number of active lanes.
    pub fn active_lanes(&self) -> u32 {
        self.active_mask.count_ones()
    }

    /// Whether the instruction accesses memory.
    pub fn is_memory(&self) -> bool {
        self.mem.is_some()
    }

    /// Internal consistency check used by the parser and by property tests:
    /// memory payload present iff the opcode is a memory opcode, spaces
    /// agree, and explicit address lists match the active-lane count.
    pub fn is_well_formed(&self) -> bool {
        match (&self.mem, self.opcode.mem_space()) {
            (None, None) => true,
            (Some(mem), Some(space)) => {
                if mem.space != space {
                    return false;
                }
                if !matches!(mem.width, 1 | 2 | 4 | 8 | 16) {
                    return false;
                }
                match &mem.addresses {
                    AddressList::Strided { .. } => true,
                    AddressList::Explicit(addrs) => addrs.len() == self.active_lanes() as usize,
                }
            }
            _ => false,
        }
    }
}

/// Ergonomic builder for [`TraceInstruction`], used by the synthetic
/// workload generators and by tests.
///
/// # Examples
///
/// ```
/// use swiftsim_trace::{InstBuilder, Opcode};
///
/// let inst = InstBuilder::new(Opcode::Ffma)
///     .pc(0x120)
///     .dst(8)
///     .src(4)
///     .src(5)
///     .mask(0xffff_ffff)
///     .build();
/// assert_eq!(inst.active_lanes(), 32);
/// assert!(inst.is_well_formed());
/// ```
#[derive(Debug, Clone)]
pub struct InstBuilder {
    inst: TraceInstruction,
}

impl InstBuilder {
    /// Start building an instruction with full active mask and PC 0.
    pub fn new(opcode: Opcode) -> Self {
        InstBuilder {
            inst: TraceInstruction {
                pc: 0,
                opcode,
                dst: None,
                srcs: Vec::new(),
                active_mask: u32::MAX,
                mem: None,
            },
        }
    }

    /// Set the program counter.
    pub fn pc(mut self, pc: u32) -> Self {
        self.inst.pc = pc;
        self
    }

    /// Set the destination register.
    pub fn dst(mut self, reg: u16) -> Self {
        self.inst.dst = Some(Reg(reg));
        self
    }

    /// Append a source register.
    pub fn src(mut self, reg: u16) -> Self {
        self.inst.srcs.push(Reg(reg));
        self
    }

    /// Set the active-thread mask.
    pub fn mask(mut self, mask: u32) -> Self {
        self.inst.active_mask = mask;
        self
    }

    /// Attach a strided access in the opcode's memory space.
    ///
    /// # Panics
    ///
    /// Panics if the opcode is not a memory opcode; that is a bug in the
    /// caller, not a data error.
    pub fn global_strided(mut self, base: u64, stride: u64, width: u8) -> Self {
        let space = self
            .inst
            .opcode
            .mem_space()
            .expect("strided access attached to non-memory opcode");
        self.inst.mem = Some(MemInfo {
            space,
            width,
            addresses: AddressList::Strided { base, stride },
        });
        self
    }

    /// Attach an explicit per-lane address list in the opcode's memory
    /// space, and narrow the active mask to the list length.
    ///
    /// # Panics
    ///
    /// Panics if the opcode is not a memory opcode or if `addrs` holds more
    /// than 32 addresses.
    pub fn explicit_addrs(mut self, addrs: Vec<u64>, width: u8) -> Self {
        let space = self
            .inst
            .opcode
            .mem_space()
            .expect("explicit access attached to non-memory opcode");
        assert!(addrs.len() <= 32, "a warp has at most 32 lanes");
        self.inst.active_mask = if addrs.len() == 32 {
            u32::MAX
        } else {
            (1u32 << addrs.len()) - 1
        };
        self.inst.mem = Some(MemInfo {
            space,
            width,
            addresses: AddressList::Explicit(addrs),
        });
        self
    }

    /// Finish building.
    pub fn build(self) -> TraceInstruction {
        debug_assert!(self.inst.is_well_formed());
        self.inst
    }
}

impl From<InstBuilder> for TraceInstruction {
    fn from(builder: InstBuilder) -> Self {
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_expansion() {
        let list = AddressList::Strided {
            base: 0x100,
            stride: 4,
        };
        assert_eq!(list.expand(4), vec![0x100, 0x104, 0x108, 0x10c]);
        assert_eq!(list.len(4), 4);
        assert!(!list.is_empty(4));
        assert!(list.is_empty(0));
    }

    #[test]
    fn strided_expansion_wraps_instead_of_panicking() {
        let list = AddressList::Strided {
            base: u64::MAX - 4,
            stride: 4,
        };
        let addrs = list.expand(3);
        assert_eq!(addrs[0], u64::MAX - 4);
        assert_eq!(addrs[2], 3); // wrapped
    }

    #[test]
    fn explicit_expansion_is_identity() {
        let addrs = vec![0x10, 0x200, 0x8];
        let list = AddressList::Explicit(addrs.clone());
        assert_eq!(list.expand(3), addrs);
    }

    #[test]
    fn builder_defaults() {
        let inst = InstBuilder::new(Opcode::Iadd).build();
        assert_eq!(inst.active_lanes(), 32);
        assert_eq!(inst.pc, 0);
        assert!(inst.dst.is_none());
        assert!(!inst.is_memory());
        assert!(inst.is_well_formed());
    }

    #[test]
    fn builder_memory() {
        let inst = InstBuilder::new(Opcode::Ldg)
            .dst(2)
            .src(1)
            .global_strided(0x1000, 4, 4)
            .build();
        assert!(inst.is_memory());
        let mem = inst.mem.as_ref().unwrap();
        assert_eq!(mem.space, MemSpace::Global);
        assert!(inst.is_well_formed());
    }

    #[test]
    fn explicit_addrs_sets_mask() {
        let inst = InstBuilder::new(Opcode::Ldg)
            .dst(2)
            .explicit_addrs(vec![1, 2, 3], 4)
            .build();
        assert_eq!(inst.active_lanes(), 3);
        assert!(inst.is_well_formed());

        let full = InstBuilder::new(Opcode::Ldg)
            .dst(2)
            .explicit_addrs((0..32).map(|i| i * 8).collect(), 8)
            .build();
        assert_eq!(full.active_lanes(), 32);
    }

    #[test]
    #[should_panic(expected = "non-memory opcode")]
    fn memory_payload_on_alu_panics() {
        let _ = InstBuilder::new(Opcode::Fadd).global_strided(0, 4, 4);
    }

    #[test]
    fn well_formedness_catches_mismatches() {
        let mut inst = InstBuilder::new(Opcode::Ldg)
            .dst(2)
            .global_strided(0x1000, 4, 4)
            .build();
        // Wrong space.
        inst.mem.as_mut().unwrap().space = MemSpace::Shared;
        assert!(!inst.is_well_formed());

        // Missing payload.
        let mut inst2 = InstBuilder::new(Opcode::Ldg)
            .dst(2)
            .build_unchecked_for_tests();
        inst2.mem = None;
        assert!(!inst2.is_well_formed());

        // Bad width.
        let mut inst3 = InstBuilder::new(Opcode::Ldg)
            .dst(2)
            .global_strided(0x1000, 4, 4)
            .build();
        inst3.mem.as_mut().unwrap().width = 3;
        assert!(!inst3.is_well_formed());

        // Explicit list length mismatch.
        let mut inst4 = InstBuilder::new(Opcode::Ldg)
            .dst(2)
            .explicit_addrs(vec![1, 2, 3], 4)
            .build();
        inst4.active_mask = u32::MAX;
        assert!(!inst4.is_well_formed());
    }

    impl InstBuilder {
        /// Test helper that skips the well-formedness debug assertion.
        fn build_unchecked_for_tests(self) -> TraceInstruction {
            self.inst
        }
    }
}
