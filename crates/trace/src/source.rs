//! Streaming trace ingestion: the [`TraceSource`] abstraction.
//!
//! The simulator consumes kernels strictly one at a time, so nothing forces
//! an application trace to be fully decoded before the first cycle ticks.
//! A [`TraceSource`] exposes per-kernel launch metadata up front (cheap to
//! obtain from a header or a structural scan) and decodes kernel *bodies*
//! lazily, one index at a time — the simulator can hold at most two decoded
//! kernels (the one simulating and the one prefetching) regardless of
//! application size.
//!
//! Three implementations ship here:
//!
//! - [`ApplicationTrace`] itself — everything already in memory; decode is
//!   a borrow ([`Cow::Borrowed`]).
//! - [`TextTraceSource`] — holds the raw text of a `.sstrace` file and a
//!   per-kernel byte-range index from a single structural scan; each kernel
//!   is parsed on demand.
//! - [`ChunkedTraceSource`] — reads only the header + section table of a
//!   version-2 `.sstraceb` file; each kernel payload is read and decoded
//!   straight from disk on demand, verified against its section hash.
//!
//! [`open_trace`] sniffs the on-disk format and returns the right one.
//!
//! All sources agree on [`TraceSource::content_hash`]: the same application
//! content yields the same hash no matter which representation it came
//! from, so campaign cache keys are representation-independent.

use crate::binfmt::{
    decode_header, decode_kernel_payload, encode_header, encode_kernel_payload, fnv1a, Section,
    MAGIC,
};
use crate::error::TraceError;
use crate::format::{parse_dim3, parse_kernel_text, parse_u32};
use crate::kernel::{ApplicationTrace, Dim3, KernelTrace};
use std::borrow::Cow;
use std::io::{Read, Seek, SeekFrom};
use std::sync::{Mutex, OnceLock};

/// Launch metadata of one kernel, available without decoding its body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelMeta {
    /// Kernel name (mangled or friendly).
    pub name: String,
    /// Grid dimensions (thread blocks).
    pub grid_dim: Dim3,
    /// Block dimensions (threads).
    pub block_dim: Dim3,
    /// Static shared memory per block, in bytes.
    pub shared_mem_bytes: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Total dynamic instructions in the kernel body.
    pub num_insts: u64,
}

impl KernelMeta {
    /// Extract the metadata of a decoded kernel.
    pub fn of(kernel: &KernelTrace) -> Self {
        KernelMeta {
            name: kernel.name.clone(),
            grid_dim: kernel.grid_dim,
            block_dim: kernel.block_dim,
            shared_mem_bytes: kernel.shared_mem_bytes,
            regs_per_thread: kernel.regs_per_thread,
            num_insts: kernel.num_insts(),
        }
    }
}

/// An application trace that can be consumed kernel-by-kernel.
///
/// Implementations are `Send + Sync` so a background thread can decode
/// kernel *k+1* while kernel *k* simulates (see `GpuSimulator::run`
/// in `swiftsim-core`). Decoding the same index twice is allowed and
/// returns equal kernels; the simulator decodes each index exactly once.
///
/// # Migration
///
/// `GpuSimulator::run(&ApplicationTrace)` is now a thin wrapper over
/// `run(impl Into<TraceInput>)` — `ApplicationTrace` implements this
/// trait with borrowing (zero-copy) decode, so existing callers are
/// unchanged. File-based callers should move from
/// `ApplicationTrace::read_from_file`/`read_binary_file` + `run` to
/// [`open_trace`] + `run(source.as_ref())` to get lazy decode and bounded memory.
pub trait TraceSource: Send + Sync {
    /// Application name.
    fn name(&self) -> &str;

    /// Number of kernel launches.
    fn num_kernels(&self) -> usize;

    /// Launch metadata of kernel `index` (no body decode).
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_kernels()`.
    fn kernel_meta(&self, index: usize) -> KernelMeta;

    /// Decode the body of kernel `index`. In-memory sources borrow;
    /// file-backed sources decode and return an owned kernel.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when the underlying bytes are unreadable,
    /// corrupt, or inconsistent with the metadata.
    ///
    /// # Panics
    ///
    /// Panics if `index >= num_kernels()`.
    fn decode_kernel(&self, index: usize) -> Result<Cow<'_, KernelTrace>, TraceError>;

    /// Stable identity of the full application content, equal across all
    /// representations of the same trace (see
    /// [`ApplicationTrace::content_hash`] for the definition). Used by the
    /// campaign engine for content-addressed cache keys.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] when computing the hash requires decoding
    /// kernels and a kernel fails to decode.
    fn content_hash(&self) -> Result<u64, TraceError>;

    /// Whether kernel decode is expensive enough that the simulator should
    /// pipeline it on a background thread. In-memory sources return
    /// `false` (decode is a borrow; a thread round-trip would only add
    /// latency); file-backed sources keep the default `true`.
    fn prefers_prefetch(&self) -> bool {
        true
    }

    /// Total dynamic instructions across all kernels, from metadata alone.
    fn total_insts(&self) -> u64 {
        (0..self.num_kernels())
            .map(|i| self.kernel_meta(i).num_insts)
            .sum()
    }

    /// Decode every kernel into an eager [`ApplicationTrace`].
    ///
    /// # Errors
    ///
    /// Returns the first kernel decode failure.
    fn to_application(&self) -> Result<ApplicationTrace, TraceError> {
        let mut kernels = Vec::with_capacity(self.num_kernels());
        for i in 0..self.num_kernels() {
            kernels.push(self.decode_kernel(i)?.into_owned());
        }
        Ok(ApplicationTrace::new(self.name().to_owned(), kernels))
    }
}

impl TraceSource for ApplicationTrace {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_kernels(&self) -> usize {
        self.kernels().len()
    }

    fn kernel_meta(&self, index: usize) -> KernelMeta {
        KernelMeta::of(&self.kernels()[index])
    }

    fn decode_kernel(&self, index: usize) -> Result<Cow<'_, KernelTrace>, TraceError> {
        Ok(Cow::Borrowed(&self.kernels()[index]))
    }

    fn content_hash(&self) -> Result<u64, TraceError> {
        Ok(ApplicationTrace::content_hash(self))
    }

    fn prefers_prefetch(&self) -> bool {
        false
    }

    fn total_insts(&self) -> u64 {
        self.num_insts()
    }
}

/// Match `line` against a section keyword: the keyword alone, or followed
/// by whitespace (so `"block"` does not match `"block_begin"`).
fn keyword<'a>(line: &'a str, kw: &str) -> Option<&'a str> {
    let rest = line.strip_prefix(kw)?;
    if rest.is_empty() || rest.starts_with(char::is_whitespace) {
        Some(rest.trim())
    } else {
        None
    }
}

struct PendingKernel {
    start: usize,
    line_offset: usize,
    name: String,
    grid_dim: Option<Dim3>,
    block_dim: Option<Dim3>,
    shared_mem_bytes: Option<u32>,
    regs_per_thread: Option<u32>,
    num_insts: u64,
    in_warp: bool,
}

/// Lazy text-format source: the raw text stays in memory, but kernels are
/// parsed one at a time from a byte-range index built by a single
/// structural scan (headers and section keywords only — instruction lines
/// are merely counted, not tokenized).
pub struct TextTraceSource {
    app_name: String,
    text: String,
    /// Per-kernel byte range of the slice `kernel ... kernel_end` in `text`.
    ranges: Vec<(usize, usize)>,
    /// Per-kernel 0-based line number of the `kernel` line, for error spans.
    line_offsets: Vec<usize>,
    metas: Vec<KernelMeta>,
    hash: OnceLock<Result<u64, TraceError>>,
}

impl TextTraceSource {
    /// Open a text trace file and scan its structure.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] carrying `path` when the file cannot be
    /// read, or a parse error from the structural scan.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| TraceError::io(path, &e))?;
        Self::from_text(text)
    }

    /// Build a source over trace text already in memory.
    ///
    /// # Errors
    ///
    /// Returns a parse error when the structural scan fails (bad header
    /// lines, sections out of place, truncated kernels).
    pub fn from_text(text: impl Into<String>) -> Result<Self, TraceError> {
        let text = text.into();
        let mut app_name: Option<String> = None;
        let mut ranges = Vec::new();
        let mut line_offsets = Vec::new();
        let mut metas = Vec::new();
        let mut cur: Option<PendingKernel> = None;

        let mut pos = 0usize;
        for (idx, raw) in text.split_inclusive('\n').enumerate() {
            let start = pos;
            pos += raw.len();
            let no = idx + 1;
            let line = match raw.find('#') {
                Some(cut) => &raw[..cut],
                None => raw,
            }
            .trim();
            if line.is_empty() {
                continue;
            }

            let Some(k) = cur.as_mut() else {
                if app_name.is_none() {
                    let Some(rest) = keyword(line, "app") else {
                        return Err(TraceError::parse(
                            no,
                            format!("expected \"app\", found {line:?}"),
                        ));
                    };
                    app_name = Some(rest.to_owned());
                } else if let Some(rest) = keyword(line, "kernel") {
                    cur = Some(PendingKernel {
                        start,
                        line_offset: idx,
                        name: rest.to_owned(),
                        grid_dim: None,
                        block_dim: None,
                        shared_mem_bytes: None,
                        regs_per_thread: None,
                        num_insts: 0,
                        in_warp: false,
                    });
                } else {
                    return Err(TraceError::parse(
                        no,
                        format!("expected \"kernel\", found {line:?}"),
                    ));
                }
                continue;
            };

            if k.in_warp {
                if line == "warp_end" {
                    k.in_warp = false;
                } else {
                    k.num_insts += 1;
                }
            } else if let Some(rest) = keyword(line, "grid") {
                k.grid_dim = Some(parse_dim3(no, rest)?);
            } else if let Some(rest) = keyword(line, "block") {
                k.block_dim = Some(parse_dim3(no, rest)?);
            } else if let Some(rest) = keyword(line, "shmem") {
                k.shared_mem_bytes = Some(parse_u32(no, rest, "shared memory size")?);
            } else if let Some(rest) = keyword(line, "regs") {
                k.regs_per_thread = Some(parse_u32(no, rest, "register count")?);
            } else if line == "warp_begin" {
                k.in_warp = true;
            } else if line == "block_begin" || line == "block_end" {
                // Block structure is validated by the real parse on decode.
            } else if line == "kernel_end" {
                let k = cur.take().expect("inside a kernel");
                let missing = |what: &str| {
                    TraceError::parse(no, format!("kernel {:?} has no {what} line", k.name))
                };
                metas.push(KernelMeta {
                    name: k.name.clone(),
                    grid_dim: k.grid_dim.ok_or_else(|| missing("grid"))?,
                    block_dim: k.block_dim.ok_or_else(|| missing("block"))?,
                    shared_mem_bytes: k.shared_mem_bytes.ok_or_else(|| missing("shmem"))?,
                    regs_per_thread: k.regs_per_thread.ok_or_else(|| missing("regs"))?,
                    num_insts: k.num_insts,
                });
                ranges.push((k.start, pos));
                line_offsets.push(k.line_offset);
            } else {
                return Err(TraceError::parse(
                    no,
                    format!("unexpected line outside warp: {line:?}"),
                ));
            }
        }

        if cur.is_some() {
            return Err(TraceError::eof("kernel"));
        }
        let Some(app_name) = app_name else {
            return Err(TraceError::eof("application header"));
        };
        Ok(TextTraceSource {
            app_name,
            text,
            ranges,
            line_offsets,
            metas,
            hash: OnceLock::new(),
        })
    }
}

impl TraceSource for TextTraceSource {
    fn name(&self) -> &str {
        &self.app_name
    }

    fn num_kernels(&self) -> usize {
        self.metas.len()
    }

    fn kernel_meta(&self, index: usize) -> KernelMeta {
        self.metas[index].clone()
    }

    fn decode_kernel(&self, index: usize) -> Result<Cow<'_, KernelTrace>, TraceError> {
        let (start, end) = self.ranges[index];
        let kernel = parse_kernel_text(&self.text[start..end], self.line_offsets[index])?;
        Ok(Cow::Owned(kernel))
    }

    fn content_hash(&self) -> Result<u64, TraceError> {
        self.hash
            .get_or_init(|| {
                // One kernel decoded + encoded at a time; only the compact
                // section entries accumulate.
                let mut sections = Vec::with_capacity(self.num_kernels());
                for i in 0..self.num_kernels() {
                    let kernel = self.decode_kernel(i)?;
                    let payload = encode_kernel_payload(&kernel);
                    sections.push(Section {
                        meta: KernelMeta::of(&kernel),
                        payload_len: payload.len() as u64,
                        payload_hash: fnv1a(&payload),
                    });
                }
                Ok(fnv1a(&encode_header(&self.app_name, &sections)))
            })
            .clone()
    }
}

/// Lazy chunked-binary source: opens a version-2 `.sstraceb` file, reads
/// only the header + section table, and decodes each kernel payload
/// straight from disk on demand (verified against its section hash). The
/// content hash comes from the header bytes alone — no payload is touched
/// until the simulator asks for it.
pub struct ChunkedTraceSource {
    path: String,
    file: Mutex<std::fs::File>,
    app_name: String,
    sections: Vec<Section>,
    /// Absolute file offset of each kernel's payload.
    offsets: Vec<u64>,
    hash: u64,
}

impl ChunkedTraceSource {
    /// Open a chunked binary trace file and read its section table.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] carrying `path` when the file cannot be
    /// read, or [`TraceError::InvalidValue`] when the header is corrupt or
    /// the section table disagrees with the file length.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let io = |e: &std::io::Error| TraceError::io(path, e);
        let mut file = std::fs::File::open(path).map_err(|e| io(&e))?;
        let file_len = file.metadata().map_err(|e| io(&e))?.len();

        // The header length is not known up front: read a prefix and grow
        // it until the header + section table parses (or the whole file is
        // buffered and still does not).
        let mut buf: Vec<u8> = Vec::new();
        let mut want: u64 = 64 * 1024;
        let (app_name, sections, header_len) = loop {
            let target = usize::try_from(want.min(file_len))
                .map_err(|_| TraceError::invalid_value("binary trace", "file too large"))?;
            if buf.len() < target {
                let old_len = buf.len();
                buf.resize(target, 0);
                file.read_exact(&mut buf[old_len..]).map_err(|e| io(&e))?;
            }
            match decode_header(&buf) {
                Ok(parsed) => break parsed,
                Err(e) => {
                    if (buf.len() as u64) < file_len {
                        want = want.saturating_mul(2);
                    } else {
                        return Err(e);
                    }
                }
            }
        };
        let hash = fnv1a(&buf[..header_len]);

        let mut offsets = Vec::with_capacity(sections.len());
        let mut offset = header_len as u64;
        for section in &sections {
            offsets.push(offset);
            offset = offset.checked_add(section.payload_len).ok_or_else(|| {
                TraceError::invalid_value("binary trace", "payload offsets overflow")
            })?;
        }
        if offset != file_len {
            return Err(TraceError::invalid_value(
                "binary trace",
                format!(
                    "section table implies {offset} bytes but the file has {file_len} \
                     (truncated or trailing data)"
                ),
            ));
        }

        Ok(ChunkedTraceSource {
            path: path.display().to_string(),
            file: Mutex::new(file),
            app_name,
            sections,
            offsets,
            hash,
        })
    }

    /// The path this source reads from.
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl TraceSource for ChunkedTraceSource {
    fn name(&self) -> &str {
        &self.app_name
    }

    fn num_kernels(&self) -> usize {
        self.sections.len()
    }

    fn kernel_meta(&self, index: usize) -> KernelMeta {
        self.sections[index].meta.clone()
    }

    fn decode_kernel(&self, index: usize) -> Result<Cow<'_, KernelTrace>, TraceError> {
        let section = &self.sections[index];
        let len = usize::try_from(section.payload_len)
            .map_err(|_| TraceError::invalid_value("binary trace", "payload length overflow"))?;
        let mut payload = vec![0u8; len];
        {
            let mut file = self.file.lock().unwrap_or_else(|p| p.into_inner());
            file.seek(SeekFrom::Start(self.offsets[index]))
                .map_err(|e| TraceError::io(&self.path, &e))?;
            file.read_exact(&mut payload)
                .map_err(|e| TraceError::io(&self.path, &e))?;
        }
        if fnv1a(&payload) != section.payload_hash {
            return Err(TraceError::invalid_value(
                "binary trace",
                format!("section hash mismatch for kernel {:?}", section.meta.name),
            ));
        }
        Ok(Cow::Owned(decode_kernel_payload(&payload, &section.meta)?))
    }

    fn content_hash(&self) -> Result<u64, TraceError> {
        Ok(self.hash)
    }
}

/// Open a trace file as a lazy [`TraceSource`], sniffing the format: files
/// starting with the `"SSTB"` magic open as [`ChunkedTraceSource`],
/// anything else as [`TextTraceSource`].
///
/// # Errors
///
/// Returns [`TraceError::Io`] carrying `path` when the file cannot be
/// read, or the format-specific open error.
pub fn open_trace(path: impl AsRef<std::path::Path>) -> Result<Box<dyn TraceSource>, TraceError> {
    let path = path.as_ref();
    let mut magic = [0u8; 4];
    let is_binary = {
        let mut file = std::fs::File::open(path).map_err(|e| TraceError::io(path, &e))?;
        file.read_exact(&mut magic).is_ok() && &magic == MAGIC
    };
    if is_binary {
        Ok(Box::new(ChunkedTraceSource::open(path)?))
    } else {
        Ok(Box::new(TextTraceSource::open(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstBuilder;
    use crate::isa::Opcode;

    fn sample_app() -> ApplicationTrace {
        let mut k0 = KernelTrace::new("alpha", (2, 1, 1), (64, 1, 1));
        k0.shared_mem_bytes = 1024;
        k0.regs_per_thread = 24;
        for b in 0u64..2 {
            let block = k0.push_block();
            for w in 0u64..2 {
                let warp = block.push_warp();
                warp.push(
                    InstBuilder::new(Opcode::Ldg)
                        .pc(0)
                        .dst(4)
                        .src(1)
                        .global_strided(0x1000 + b * 0x100 + w * 0x40, 4, 4),
                );
                warp.push(InstBuilder::new(Opcode::Ffma).pc(16).dst(5).src(4).src(4));
                warp.push(InstBuilder::new(Opcode::Exit).pc(32));
            }
        }
        let mut k1 = KernelTrace::new("beta", (1, 1, 1), (32, 1, 1));
        let block = k1.push_block();
        let warp = block.push_warp();
        warp.push(InstBuilder::new(Opcode::Iadd).pc(0).dst(1).src(1));
        warp.push(InstBuilder::new(Opcode::Exit).pc(16));
        ApplicationTrace::new("sample", vec![k0, k1])
    }

    fn temp_dir() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("swiftsim_source_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn in_memory_source_borrows() {
        let app = sample_app();
        let src: &dyn TraceSource = &app;
        assert_eq!(src.num_kernels(), 2);
        assert_eq!(src.name(), "sample");
        assert_eq!(src.total_insts(), app.num_insts());
        let k = src.decode_kernel(0).unwrap();
        assert!(matches!(k, Cow::Borrowed(_)));
        assert_eq!(src.kernel_meta(1).name, "beta");
        assert_eq!(src.kernel_meta(1).num_insts, 2);
    }

    #[test]
    fn text_source_matches_eager_parse() {
        let app = sample_app();
        let src = TextTraceSource::from_text(app.to_trace_text()).unwrap();
        assert_eq!(src.num_kernels(), 2);
        assert_eq!(src.kernel_meta(0), KernelMeta::of(&app.kernels()[0]));
        assert_eq!(src.kernel_meta(1), KernelMeta::of(&app.kernels()[1]));
        assert_eq!(src.to_application().unwrap(), app);
        assert_eq!(src.content_hash().unwrap(), app.content_hash());
    }

    #[test]
    fn text_source_reports_whole_file_line_numbers() {
        let app = sample_app();
        let mut text = app.to_trace_text();
        // Corrupt an instruction line inside the *second* kernel.
        let beta = text.find("kernel beta").unwrap();
        let iadd = text[beta..].find("0000 IADD").unwrap() + beta;
        text.replace_range(iadd..iadd + 4, "zzzz");
        let src = TextTraceSource::from_text(text.clone()).unwrap();
        let err = src.decode_kernel(1).unwrap_err();
        let expected_line = text[..iadd].lines().count() + 1;
        match err {
            TraceError::InvalidValue { .. } => {}
            TraceError::Parse { line, .. } => assert_eq!(line, expected_line),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn text_source_rejects_structural_garbage() {
        assert!(TextTraceSource::from_text("widget\n").is_err());
        assert!(TextTraceSource::from_text("app a\nwidget\n").is_err());
        // Truncated kernel.
        assert!(TextTraceSource::from_text("app a\nkernel k\ngrid 1 1 1\n").is_err());
        // Missing header line.
        assert!(TextTraceSource::from_text("app a\nkernel k\nkernel_end\n").is_err());
        // Empty app is fine.
        let src = TextTraceSource::from_text("app a\n").unwrap();
        assert_eq!(src.num_kernels(), 0);
    }

    #[test]
    fn chunked_source_matches_eager_decode() {
        let app = sample_app();
        let path = temp_dir().join("chunked.sstraceb");
        app.write_binary_file(&path).unwrap();

        let src = ChunkedTraceSource::open(&path).unwrap();
        assert_eq!(src.name(), "sample");
        assert_eq!(src.num_kernels(), 2);
        assert_eq!(src.kernel_meta(0), KernelMeta::of(&app.kernels()[0]));
        assert_eq!(src.total_insts(), app.num_insts());
        assert_eq!(src.content_hash().unwrap(), app.content_hash());
        assert_eq!(src.to_application().unwrap(), app);
        // Decoding out of order and twice works.
        assert_eq!(&*src.decode_kernel(1).unwrap(), &app.kernels()[1]);
        assert_eq!(&*src.decode_kernel(1).unwrap(), &app.kernels()[1]);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_source_rejects_truncated_file() {
        let app = sample_app();
        let bytes = app.to_binary();
        let path = temp_dir().join("truncated.sstraceb");
        std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
        assert!(ChunkedTraceSource::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_source_detects_payload_corruption_on_decode() {
        let app = sample_app();
        let mut bytes = app.to_binary();
        let path = temp_dir().join("corrupt.sstraceb");
        // Flip the last byte — inside the final kernel's payload.
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        // Open succeeds (header is intact) ...
        let src = ChunkedTraceSource::open(&path).unwrap();
        // ... the intact kernel decodes, the corrupt one is rejected.
        assert!(src.decode_kernel(0).is_ok());
        assert!(src.decode_kernel(1).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_trace_sniffs_format() {
        let app = sample_app();
        let dir = temp_dir();
        let text_path = dir.join("sniff.sstrace");
        let bin_path = dir.join("sniff.sstraceb");
        app.write_to_file(&text_path).unwrap();
        app.write_binary_file(&bin_path).unwrap();

        let text_src = open_trace(&text_path).unwrap();
        let bin_src = open_trace(&bin_path).unwrap();
        assert_eq!(text_src.to_application().unwrap(), app);
        assert_eq!(bin_src.to_application().unwrap(), app);
        assert_eq!(
            text_src.content_hash().unwrap(),
            bin_src.content_hash().unwrap()
        );

        let err = match open_trace(dir.join("nope.sstrace")) {
            Err(e) => e,
            Ok(_) => panic!("missing file unexpectedly opened"),
        };
        assert!(matches!(err, TraceError::Io { .. }), "{err}");
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&bin_path).ok();
    }
}
