//! Kernel, block, warp, and application trace containers.

use crate::inst::TraceInstruction;
use crate::isa::OpcodeClass;
use std::fmt;

/// A CUDA launch dimension (x, y, z).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// X extent.
    pub x: u32,
    /// Y extent.
    pub y: u32,
    /// Z extent.
    pub z: u32,
}

impl Dim3 {
    /// Create a dimension triple.
    pub fn new(x: u32, y: u32, z: u32) -> Self {
        Dim3 { x, y, z }
    }

    /// Total element count (`x * y * z`).
    pub fn count(&self) -> u64 {
        u64::from(self.x) * u64::from(self.y) * u64::from(self.z)
    }
}

impl From<(u32, u32, u32)> for Dim3 {
    fn from((x, y, z): (u32, u32, u32)) -> Self {
        Dim3::new(x, y, z)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.x, self.y, self.z)
    }
}

/// The dynamic instruction stream of one warp.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WarpTrace {
    insts: Vec<TraceInstruction>,
}

impl WarpTrace {
    /// Create an empty warp trace.
    pub fn new() -> Self {
        WarpTrace::default()
    }

    /// Append an instruction (anything convertible, e.g. an
    /// [`InstBuilder`](crate::InstBuilder)).
    pub fn push(&mut self, inst: impl Into<TraceInstruction>) {
        self.insts.push(inst.into());
    }

    /// The instruction stream.
    pub fn instructions(&self) -> &[TraceInstruction] {
        &self.insts
    }

    /// Number of dynamic instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the warp executes no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Iterate over instructions.
    pub fn iter(&self) -> std::slice::Iter<'_, TraceInstruction> {
        self.insts.iter()
    }
}

impl FromIterator<TraceInstruction> for WarpTrace {
    fn from_iter<I: IntoIterator<Item = TraceInstruction>>(iter: I) -> Self {
        WarpTrace {
            insts: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceInstruction> for WarpTrace {
    fn extend<I: IntoIterator<Item = TraceInstruction>>(&mut self, iter: I) {
        self.insts.extend(iter);
    }
}

impl<'a> IntoIterator for &'a WarpTrace {
    type Item = &'a TraceInstruction;
    type IntoIter = std::slice::Iter<'a, TraceInstruction>;

    fn into_iter(self) -> Self::IntoIter {
        self.insts.iter()
    }
}

/// The warps of one thread block.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BlockTrace {
    warps: Vec<WarpTrace>,
}

impl BlockTrace {
    /// Create an empty block trace.
    pub fn new() -> Self {
        BlockTrace::default()
    }

    /// Append an empty warp and return a mutable handle to fill it.
    pub fn push_warp(&mut self) -> &mut WarpTrace {
        self.warps.push(WarpTrace::new());
        self.warps.last_mut().expect("just pushed")
    }

    /// The block's warps.
    pub fn warps(&self) -> &[WarpTrace] {
        &self.warps
    }

    /// Number of warps.
    pub fn num_warps(&self) -> usize {
        self.warps.len()
    }

    /// Total dynamic instructions across all warps.
    pub fn num_insts(&self) -> u64 {
        self.warps.iter().map(|w| w.len() as u64).sum()
    }
}

impl FromIterator<WarpTrace> for BlockTrace {
    fn from_iter<I: IntoIterator<Item = WarpTrace>>(iter: I) -> Self {
        BlockTrace {
            warps: iter.into_iter().collect(),
        }
    }
}

/// One kernel launch: geometry, resource usage, and per-block traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelTrace {
    /// Kernel name (mangled or friendly).
    pub name: String,
    /// Grid dimensions (thread blocks).
    pub grid_dim: Dim3,
    /// Block dimensions (threads).
    pub block_dim: Dim3,
    /// Static shared memory per block, in bytes.
    pub shared_mem_bytes: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    blocks: Vec<BlockTrace>,
}

impl KernelTrace {
    /// Create a kernel trace with the given launch geometry and no blocks.
    pub fn new(
        name: impl Into<String>,
        grid_dim: impl Into<Dim3>,
        block_dim: impl Into<Dim3>,
    ) -> Self {
        KernelTrace {
            name: name.into(),
            grid_dim: grid_dim.into(),
            block_dim: block_dim.into(),
            shared_mem_bytes: 0,
            regs_per_thread: 32,
            blocks: Vec::new(),
        }
    }

    /// Append an empty block and return a mutable handle to fill it.
    pub fn push_block(&mut self) -> &mut BlockTrace {
        self.blocks.push(BlockTrace::new());
        self.blocks.last_mut().expect("just pushed")
    }

    /// Append a pre-built block.
    pub fn push_block_trace(&mut self, block: BlockTrace) {
        self.blocks.push(block);
    }

    /// The kernel's blocks, in launch order.
    pub fn blocks(&self) -> &[BlockTrace] {
        &self.blocks
    }

    /// Threads per block.
    pub fn threads_per_block(&self) -> u32 {
        self.block_dim.count() as u32
    }

    /// Warps per block for the given warp size.
    pub fn warps_per_block(&self, warp_size: u32) -> u32 {
        self.threads_per_block().div_ceil(warp_size)
    }

    /// Total dynamic instructions in the kernel.
    pub fn num_insts(&self) -> u64 {
        self.blocks.iter().map(BlockTrace::num_insts).sum()
    }

    /// Check that the trace body matches the launch geometry: one traced
    /// block per grid element (when blocks are present) and a consistent
    /// warp count per block.
    pub fn is_consistent(&self, warp_size: u32) -> bool {
        if self.blocks.is_empty() {
            return false;
        }
        if self.blocks.len() as u64 != self.grid_dim.count() {
            return false;
        }
        let expected_warps = self.warps_per_block(warp_size) as usize;
        self.blocks.iter().all(|b| b.num_warps() == expected_warps)
    }
}

/// A traced application: an ordered list of kernel launches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApplicationTrace {
    /// Application name (e.g. `"bfs"`).
    pub name: String,
    kernels: Vec<KernelTrace>,
}

impl ApplicationTrace {
    /// Create an application trace from kernels in launch order.
    pub fn new(name: impl Into<String>, kernels: Vec<KernelTrace>) -> Self {
        ApplicationTrace {
            name: name.into(),
            kernels,
        }
    }

    /// The kernels, in launch order.
    pub fn kernels(&self) -> &[KernelTrace] {
        &self.kernels
    }

    /// Total dynamic instructions across kernels.
    pub fn num_insts(&self) -> u64 {
        self.kernels.iter().map(KernelTrace::num_insts).sum()
    }

    /// Compute summary statistics over the whole application.
    pub fn stats(&self) -> TraceStats {
        let mut stats = TraceStats::default();
        for kernel in &self.kernels {
            stats.kernels += 1;
            stats.blocks += kernel.blocks().len() as u64;
            for block in kernel.blocks() {
                stats.warps += block.num_warps() as u64;
                for warp in block.warps() {
                    for inst in warp {
                        stats.instructions += 1;
                        match inst.opcode.class() {
                            OpcodeClass::Int => stats.int_insts += 1,
                            OpcodeClass::Sp => stats.sp_insts += 1,
                            OpcodeClass::Dp => stats.dp_insts += 1,
                            OpcodeClass::Sfu => stats.sfu_insts += 1,
                            OpcodeClass::Tensor => stats.tensor_insts += 1,
                            OpcodeClass::Memory => stats.mem_insts += 1,
                            OpcodeClass::Control => stats.control_insts += 1,
                            OpcodeClass::Barrier => stats.barriers += 1,
                            OpcodeClass::Exit => {}
                        }
                    }
                }
            }
        }
        stats
    }
}

impl FromIterator<KernelTrace> for ApplicationTrace {
    fn from_iter<I: IntoIterator<Item = KernelTrace>>(iter: I) -> Self {
        ApplicationTrace {
            name: String::new(),
            kernels: iter.into_iter().collect(),
        }
    }
}

/// Instruction-mix summary of an [`ApplicationTrace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[allow(missing_docs)] // field names are self-describing counters
pub struct TraceStats {
    pub kernels: u64,
    pub blocks: u64,
    pub warps: u64,
    pub instructions: u64,
    pub int_insts: u64,
    pub sp_insts: u64,
    pub dp_insts: u64,
    pub sfu_insts: u64,
    pub tensor_insts: u64,
    pub mem_insts: u64,
    pub control_insts: u64,
    pub barriers: u64,
}

impl TraceStats {
    /// Fraction of dynamic instructions that access memory.
    pub fn memory_intensity(&self) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        self.mem_insts as f64 / self.instructions as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstBuilder;
    use crate::isa::Opcode;

    fn tiny_app() -> ApplicationTrace {
        let mut kernel = KernelTrace::new("k", (2, 1, 1), (64, 1, 1));
        for _ in 0..2 {
            let b = kernel.push_block();
            for _ in 0..2 {
                let w = b.push_warp();
                w.push(
                    InstBuilder::new(Opcode::Ldg)
                        .dst(2)
                        .src(1)
                        .global_strided(0, 4, 4),
                );
                w.push(InstBuilder::new(Opcode::Ffma).dst(3).src(2).src(2));
                w.push(InstBuilder::new(Opcode::Iadd).dst(1).src(1));
                w.push(InstBuilder::new(Opcode::Exit));
            }
        }
        ApplicationTrace::new("tiny", vec![kernel])
    }

    #[test]
    fn dim3_count() {
        assert_eq!(Dim3::new(4, 2, 3).count(), 24);
        assert_eq!(Dim3::from((1, 1, 1)).count(), 1);
    }

    #[test]
    fn warps_per_block_rounds_up() {
        let k = KernelTrace::new("k", (1, 1, 1), (65, 1, 1));
        assert_eq!(k.warps_per_block(32), 3);
        assert_eq!(k.threads_per_block(), 65);
    }

    #[test]
    fn stats_count_classes() {
        let stats = tiny_app().stats();
        assert_eq!(stats.kernels, 1);
        assert_eq!(stats.blocks, 2);
        assert_eq!(stats.warps, 4);
        assert_eq!(stats.instructions, 16);
        assert_eq!(stats.mem_insts, 4);
        assert_eq!(stats.sp_insts, 4);
        assert_eq!(stats.int_insts, 4);
        assert!((stats.memory_intensity() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_intensity_is_zero() {
        assert_eq!(TraceStats::default().memory_intensity(), 0.0);
    }

    #[test]
    fn consistency_checks_geometry() {
        let app = tiny_app();
        assert!(app.kernels()[0].is_consistent(32));

        let mut short = app.kernels()[0].clone();
        short.grid_dim = Dim3::new(3, 1, 1);
        assert!(!short.is_consistent(32));

        let empty = KernelTrace::new("e", (1, 1, 1), (32, 1, 1));
        assert!(!empty.is_consistent(32));
    }

    #[test]
    fn collect_warp_from_iterator() {
        let warp: WarpTrace = (0..5)
            .map(|i| InstBuilder::new(Opcode::Iadd).pc(i * 16).dst(1).build())
            .collect();
        assert_eq!(warp.len(), 5);
        assert_eq!(warp.iter().count(), 5);
        let pcs: Vec<u32> = (&warp).into_iter().map(|i| i.pc).collect();
        assert_eq!(pcs, vec![0, 16, 32, 48, 64]);
    }

    #[test]
    fn num_insts_aggregates() {
        let app = tiny_app();
        assert_eq!(app.num_insts(), 16);
        assert_eq!(app.kernels()[0].num_insts(), 16);
        assert_eq!(app.kernels()[0].blocks()[0].num_insts(), 8);
    }
}
