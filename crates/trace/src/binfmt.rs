//! Compact chunked binary trace format (`.sstraceb`, version 2).
//!
//! Text traces are convenient to inspect but large: real NVBit captures run
//! to gigabytes. This module provides a varint-packed binary encoding that
//! is typically 3–6x smaller than the text format and parses without any
//! string processing. Version 2 is *chunked*: a per-kernel section table
//! sits between the header and the kernel payloads, so a single kernel can
//! be located and decoded without touching the rest of the file — the
//! foundation of the streaming [`crate::ChunkedTraceSource`].
//!
//! ```text
//! "SSTB" u8-version(2)
//! app-name
//! kernel-count
//! section table, one entry per kernel:
//!     name grid(3) block(3) shmem regs num-insts payload-len payload-hash(8B LE)
//! payloads, concatenated in kernel order:
//!     block-count { warp-count { inst-count { instruction } } }
//! ```
//!
//! All integers are LEB128 varints; strings are length-prefixed UTF-8;
//! `payload-hash` is the FNV-1a of the payload bytes, fixed 8-byte
//! little-endian. An instruction is `pc opcode flags [dst] srcs... mask
//! [space width addrs]` where `flags` packs the destination presence,
//! source count, and address-list kind.
//!
//! Because every section entry commits to its payload (length + content
//! hash), the [`ApplicationTrace::content_hash`] of a trace is defined as
//! the FNV-1a of the header + section table alone: an indexed file yields
//! it without decoding any payload, and an in-memory trace yields the same
//! value by encoding payloads one kernel at a time and discarding them.

use crate::error::TraceError;
use crate::inst::{AddressList, MemInfo, Reg, TraceInstruction};
use crate::isa::Opcode;
use crate::kernel::{ApplicationTrace, Dim3, KernelTrace, WarpTrace};
use crate::source::KernelMeta;

pub(crate) const MAGIC: &[u8; 4] = b"SSTB";
const VERSION: u8 = 2;

// Flag bits of the per-instruction header byte.
const FLAG_HAS_DST: u8 = 0b0000_0001;
const FLAG_HAS_MEM: u8 = 0b0000_0010;
const FLAG_EXPLICIT_ADDRS: u8 = 0b0000_0100;
const SRC_COUNT_SHIFT: u8 = 4;

/// FNV-1a over a byte slice — the stable hash used for section hashes and
/// the whole-trace content hash (`DefaultHasher` would not survive a
/// toolchain upgrade).
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_string(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    pub(crate) fn err(&self, what: &str) -> TraceError {
        TraceError::invalid_value("binary trace", format!("{what} at byte {}", self.pos))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| self.err("overflow"))?;
        if end > self.bytes.len() {
            return Err(self.err("unexpected end of data"));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.err("varint too long"))
    }

    fn varint_u32(&mut self, what: &str) -> Result<u32, TraceError> {
        u32::try_from(self.varint()?).map_err(|_| self.err(what))
    }

    fn string(&mut self) -> Result<String, TraceError> {
        let len = self.varint()? as usize;
        if len > 1 << 20 {
            return Err(self.err("string too long"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid UTF-8"))
    }
}

fn encode_inst(out: &mut Vec<u8>, inst: &TraceInstruction) {
    push_varint(out, u64::from(inst.pc));
    let op_index = Opcode::ALL
        .iter()
        .position(|&o| o == inst.opcode)
        .expect("opcode is in ALL") as u8;
    out.push(op_index);

    let mut flags = 0u8;
    if inst.dst.is_some() {
        flags |= FLAG_HAS_DST;
    }
    let explicit = matches!(
        inst.mem.as_ref().map(|m| &m.addresses),
        Some(AddressList::Explicit(_))
    );
    if inst.mem.is_some() {
        flags |= FLAG_HAS_MEM;
    }
    if explicit {
        flags |= FLAG_EXPLICIT_ADDRS;
    }
    flags |= (inst.srcs.len().min(15) as u8) << SRC_COUNT_SHIFT;
    out.push(flags);

    if let Some(dst) = inst.dst {
        push_varint(out, u64::from(dst.0));
    }
    for src in &inst.srcs {
        push_varint(out, u64::from(src.0));
    }
    push_varint(out, u64::from(inst.active_mask));

    if let Some(mem) = &inst.mem {
        out.push(mem.width);
        match &mem.addresses {
            AddressList::Strided { base, stride } => {
                push_varint(out, *base);
                push_varint(out, *stride);
            }
            AddressList::Explicit(addrs) => {
                push_varint(out, addrs.len() as u64);
                // Delta-encode: consecutive-lane addresses are near each
                // other in practice, keeping varints short.
                let mut prev = 0u64;
                for &a in addrs {
                    push_varint(out, a.wrapping_sub(prev));
                    prev = a;
                }
            }
        }
    }
}

fn decode_inst(r: &mut Reader<'_>) -> Result<TraceInstruction, TraceError> {
    let pc = r.varint_u32("pc out of range")?;
    let op_index = r.byte()? as usize;
    let opcode = *Opcode::ALL
        .get(op_index)
        .ok_or_else(|| r.err("opcode index out of range"))?;
    let flags = r.byte()?;
    let dst = if flags & FLAG_HAS_DST != 0 {
        Some(Reg(
            u16::try_from(r.varint()?).map_err(|_| r.err("dst register"))?
        ))
    } else {
        None
    };
    let n_srcs = usize::from(flags >> SRC_COUNT_SHIFT);
    let mut srcs = Vec::with_capacity(n_srcs);
    for _ in 0..n_srcs {
        srcs.push(Reg(
            u16::try_from(r.varint()?).map_err(|_| r.err("src register"))?
        ));
    }
    let active_mask = r.varint_u32("active mask")?;

    let mem = if flags & FLAG_HAS_MEM != 0 {
        let space = opcode
            .mem_space()
            .ok_or_else(|| r.err("memory payload on non-memory opcode"))?;
        let width = r.byte()?;
        let addresses = if flags & FLAG_EXPLICIT_ADDRS != 0 {
            let n = r.varint()? as usize;
            if n > 32 {
                return Err(r.err("more than 32 lane addresses"));
            }
            let mut addrs = Vec::with_capacity(n);
            let mut prev = 0u64;
            for _ in 0..n {
                prev = prev.wrapping_add(r.varint()?);
                addrs.push(prev);
            }
            AddressList::Explicit(addrs)
        } else {
            let base = r.varint()?;
            let stride = r.varint()?;
            AddressList::Strided { base, stride }
        };
        Some(MemInfo {
            space,
            width,
            addresses,
        })
    } else {
        None
    };

    let inst = TraceInstruction {
        pc,
        opcode,
        dst,
        srcs,
        active_mask,
        mem,
    };
    if !inst.is_well_formed() {
        return Err(r.err("inconsistent instruction"));
    }
    Ok(inst)
}

/// One entry of the version-2 section table: a kernel's launch metadata
/// plus the length and content hash of its (not yet decoded) payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Section {
    pub(crate) meta: KernelMeta,
    pub(crate) payload_len: u64,
    pub(crate) payload_hash: u64,
}

/// Encode a kernel's body (blocks/warps/instructions) as a standalone
/// payload.
pub(crate) fn encode_kernel_payload(kernel: &KernelTrace) -> Vec<u8> {
    let mut out = Vec::new();
    push_varint(&mut out, kernel.blocks().len() as u64);
    for block in kernel.blocks() {
        push_varint(&mut out, block.num_warps() as u64);
        for warp in block.warps() {
            push_varint(&mut out, warp.len() as u64);
            for inst in warp {
                encode_inst(&mut out, inst);
            }
        }
    }
    out
}

/// Decode one kernel payload against its section metadata.
pub(crate) fn decode_kernel_payload(
    bytes: &[u8],
    meta: &KernelMeta,
) -> Result<KernelTrace, TraceError> {
    let mut r = Reader::new(bytes);
    let mut kernel = KernelTrace::new(meta.name.clone(), meta.grid_dim, meta.block_dim);
    kernel.shared_mem_bytes = meta.shared_mem_bytes;
    kernel.regs_per_thread = meta.regs_per_thread;
    let num_blocks = r.varint()? as usize;
    if num_blocks > 1 << 24 {
        return Err(r.err("block count"));
    }
    for _ in 0..num_blocks {
        let block = kernel.push_block();
        let num_warps = r.varint()? as usize;
        if num_warps > 1 << 16 {
            return Err(r.err("warp count"));
        }
        for _ in 0..num_warps {
            let num_insts = r.varint()? as usize;
            if num_insts > 1 << 28 {
                return Err(r.err("instruction count"));
            }
            let mut warp = WarpTrace::new();
            for _ in 0..num_insts {
                warp.push(decode_inst(&mut r)?);
            }
            *block.push_warp() = warp;
        }
    }
    if r.pos() != bytes.len() {
        return Err(r.err("trailing payload bytes"));
    }
    if kernel.num_insts() != meta.num_insts {
        return Err(TraceError::invalid_value(
            "binary trace",
            format!(
                "kernel {:?} payload has {} instructions, section table says {}",
                meta.name,
                kernel.num_insts(),
                meta.num_insts
            ),
        ));
    }
    Ok(kernel)
}

fn encode_section_entry(out: &mut Vec<u8>, s: &Section) {
    push_string(out, &s.meta.name);
    for d in [s.meta.grid_dim.x, s.meta.grid_dim.y, s.meta.grid_dim.z] {
        push_varint(out, u64::from(d));
    }
    for d in [s.meta.block_dim.x, s.meta.block_dim.y, s.meta.block_dim.z] {
        push_varint(out, u64::from(d));
    }
    push_varint(out, u64::from(s.meta.shared_mem_bytes));
    push_varint(out, u64::from(s.meta.regs_per_thread));
    push_varint(out, s.meta.num_insts);
    push_varint(out, s.payload_len);
    out.extend_from_slice(&s.payload_hash.to_le_bytes());
}

fn decode_section_entry(r: &mut Reader<'_>) -> Result<Section, TraceError> {
    let name = r.string()?;
    let g = [
        r.varint_u32("grid dim")?,
        r.varint_u32("grid dim")?,
        r.varint_u32("grid dim")?,
    ];
    let b = [
        r.varint_u32("block dim")?,
        r.varint_u32("block dim")?,
        r.varint_u32("block dim")?,
    ];
    let shared_mem_bytes = r.varint_u32("shared memory")?;
    let regs_per_thread = r.varint_u32("registers")?;
    let num_insts = r.varint()?;
    let payload_len = r.varint()?;
    let hash_bytes: [u8; 8] = r.take(8)?.try_into().expect("take(8) returns 8 bytes");
    Ok(Section {
        meta: KernelMeta {
            name,
            grid_dim: Dim3::new(g[0], g[1], g[2]),
            block_dim: Dim3::new(b[0], b[1], b[2]),
            shared_mem_bytes,
            regs_per_thread,
            num_insts,
        },
        payload_len,
        payload_hash: u64::from_le_bytes(hash_bytes),
    })
}

/// Serialize the `"SSTB"` header + section table for the given sections.
pub(crate) fn encode_header(name: &str, sections: &[Section]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    push_string(&mut out, name);
    push_varint(&mut out, sections.len() as u64);
    for s in sections {
        encode_section_entry(&mut out, s);
    }
    out
}

/// Parse the header + section table from the front of `bytes`, returning
/// the app name, the sections, and the number of header bytes consumed.
pub(crate) fn decode_header(bytes: &[u8]) -> Result<(String, Vec<Section>, usize), TraceError> {
    let mut r = Reader::new(bytes);
    if r.take(4)? != MAGIC {
        return Err(TraceError::invalid_value("binary trace", "bad magic"));
    }
    let version = r.byte()?;
    if version != VERSION {
        return Err(TraceError::invalid_value(
            "binary trace version",
            version.to_string(),
        ));
    }
    let name = r.string()?;
    let num_kernels = r.varint()? as usize;
    if num_kernels > 1 << 20 {
        return Err(r.err("kernel count"));
    }
    let mut sections = Vec::with_capacity(num_kernels);
    for _ in 0..num_kernels {
        sections.push(decode_section_entry(&mut r)?);
    }
    Ok((name, sections, r.pos()))
}

fn section_of(kernel: &KernelTrace) -> (Section, Vec<u8>) {
    let payload = encode_kernel_payload(kernel);
    let section = Section {
        meta: KernelMeta::of(kernel),
        payload_len: payload.len() as u64,
        payload_hash: fnv1a(&payload),
    };
    (section, payload)
}

/// Streaming writer for the chunked binary format: feed kernels one at a
/// time, then [`finish`](ChunkedTraceWriter::finish) or
/// [`finish_to_file`](ChunkedTraceWriter::finish_to_file). Only the
/// *encoded* payload bytes are buffered (compact varints, typically far
/// smaller than the decoded `KernelTrace`), so a generator can emit a
/// multi-gigabyte-when-decoded application without ever materializing it.
#[derive(Debug, Default)]
pub struct ChunkedTraceWriter {
    name: String,
    sections: Vec<Section>,
    payloads: Vec<Vec<u8>>,
}

impl ChunkedTraceWriter {
    /// Start a trace for the application `name`.
    pub fn new(name: impl Into<String>) -> Self {
        ChunkedTraceWriter {
            name: name.into(),
            sections: Vec::new(),
            payloads: Vec::new(),
        }
    }

    /// Append one kernel. The kernel is encoded immediately and can be
    /// dropped by the caller afterwards.
    pub fn add_kernel(&mut self, kernel: &KernelTrace) {
        let (section, payload) = section_of(kernel);
        self.sections.push(section);
        self.payloads.push(payload);
    }

    /// Kernels added so far.
    pub fn num_kernels(&self) -> usize {
        self.sections.len()
    }

    /// Finish into the complete on-disk byte image.
    pub fn finish(self) -> Vec<u8> {
        let mut out = encode_header(&self.name, &self.sections);
        for payload in &self.payloads {
            out.extend_from_slice(payload);
        }
        out
    }

    /// Finish and write to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] carrying `path` on any I/O failure.
    pub fn finish_to_file(self, path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
        let path = path.as_ref();
        std::fs::write(path, self.finish()).map_err(|e| TraceError::io(path, &e))
    }
}

impl ApplicationTrace {
    /// Serialize to the chunked binary format (version 2).
    pub fn to_binary(&self) -> Vec<u8> {
        let mut w = ChunkedTraceWriter::new(&self.name);
        for kernel in self.kernels() {
            w.add_kernel(kernel);
        }
        w.finish()
    }

    /// Stable identity of the trace's full content: FNV-1a over the binary
    /// header + section table (which is versioned, so a format change also
    /// changes every hash; and every section entry commits to its payload's
    /// length and FNV-1a, so any instruction change changes the hash).
    ///
    /// Two traces hash equal exactly when every kernel, block, warp, and
    /// instruction — including addresses and active masks — is identical.
    /// The campaign engine uses this as the trace component of its
    /// content-addressed cache keys; `DefaultHasher` would not survive a
    /// toolchain upgrade. A [`crate::ChunkedTraceSource`] yields the *same*
    /// value from an indexed file without decoding any kernel (see
    /// [`crate::TraceSource::content_hash`]).
    pub fn content_hash(&self) -> u64 {
        // Encode payloads one kernel at a time, keeping only their section
        // entries: peak extra memory is one encoded kernel.
        let sections: Vec<Section> = self
            .kernels()
            .iter()
            .map(|k| {
                let (section, _payload) = section_of(k);
                section
            })
            .collect();
        fnv1a(&encode_header(&self.name, &sections))
    }

    /// Parse the chunked binary format.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidValue`] on a bad magic/version, a
    /// truncated stream, a section-hash mismatch, or any field outside its
    /// domain.
    pub fn from_binary(bytes: &[u8]) -> Result<ApplicationTrace, TraceError> {
        let (name, sections, header_len) = decode_header(bytes)?;
        let mut kernels = Vec::with_capacity(sections.len());
        let mut offset = header_len;
        for section in &sections {
            let len = usize::try_from(section.payload_len).map_err(|_| {
                TraceError::invalid_value("binary trace", "payload length overflow")
            })?;
            let end = offset
                .checked_add(len)
                .filter(|&e| e <= bytes.len())
                .ok_or_else(|| {
                    TraceError::invalid_value("binary trace", "truncated kernel payload")
                })?;
            let payload = &bytes[offset..end];
            if fnv1a(payload) != section.payload_hash {
                return Err(TraceError::invalid_value(
                    "binary trace",
                    format!("section hash mismatch for kernel {:?}", section.meta.name),
                ));
            }
            kernels.push(decode_kernel_payload(payload, &section.meta)?);
            offset = end;
        }
        if offset != bytes.len() {
            return Err(TraceError::invalid_value("binary trace", "trailing bytes"));
        }
        Ok(ApplicationTrace::new(name, kernels))
    }

    /// Write the binary format to `path`.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] carrying `path` on any I/O failure.
    pub fn write_binary_file(&self, path: impl AsRef<std::path::Path>) -> Result<(), TraceError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_binary()).map_err(|e| TraceError::io(path, &e))
    }

    /// Read the binary format from `path`, eagerly decoding every kernel.
    /// For streaming per-kernel decode, use [`crate::ChunkedTraceSource`]
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] carrying `path` when the file cannot be
    /// read, or the parse error otherwise.
    pub fn read_binary_file(
        path: impl AsRef<std::path::Path>,
    ) -> Result<ApplicationTrace, TraceError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| TraceError::io(path, &e))?;
        ApplicationTrace::from_binary(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstBuilder;

    fn sample_app() -> ApplicationTrace {
        let mut kernel = KernelTrace::new("k0", (2, 1, 1), (64, 1, 1));
        kernel.shared_mem_bytes = 2048;
        kernel.regs_per_thread = 40;
        for b in 0u64..2 {
            let block = kernel.push_block();
            for w in 0u64..2 {
                let warp = block.push_warp();
                warp.push(
                    InstBuilder::new(Opcode::Ldg)
                        .pc(0)
                        .dst(4)
                        .src(1)
                        .global_strided(0x10_0000 + b * 0x1000 + w * 0x100, 4, 4),
                );
                warp.push(InstBuilder::new(Opcode::Ffma).pc(16).dst(5).src(4).src(4));
                warp.push(
                    InstBuilder::new(Opcode::Stg)
                        .pc(32)
                        .src(5)
                        .explicit_addrs(vec![0x40, 0x99, 0x80, 0x20_0000], 4),
                );
                warp.push(InstBuilder::new(Opcode::Bar).pc(48));
                warp.push(InstBuilder::new(Opcode::Exit).pc(64).mask(0x00ff_00ff));
            }
        }
        ApplicationTrace::new("binary_sample", vec![kernel])
    }

    #[test]
    fn round_trip() {
        let app = sample_app();
        let bytes = app.to_binary();
        let back = ApplicationTrace::from_binary(&bytes).expect("round trip");
        assert_eq!(back, app);
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let app = sample_app();
        assert!(app.to_binary().len() < app.to_trace_text().len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_app().to_binary();
        bytes[0] = b'X';
        assert!(ApplicationTrace::from_binary(&bytes).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_app().to_binary();
        bytes[4] = 99;
        assert!(ApplicationTrace::from_binary(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample_app().to_binary();
        // Any prefix must fail, never panic.
        for cut in 0..bytes.len() {
            assert!(
                ApplicationTrace::from_binary(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_app().to_binary();
        bytes.push(0);
        assert!(ApplicationTrace::from_binary(&bytes).is_err());
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        // Flip every byte (one at a time): decoding must return, not panic.
        // Payload flips are guaranteed to be *detected* by the section
        // hash; header flips either fail to parse or change the layout.
        let bytes = sample_app().to_binary();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xff;
            let _ = ApplicationTrace::from_binary(&corrupted);
        }
    }

    #[test]
    fn payload_corruption_is_detected_by_section_hash() {
        let app = sample_app();
        let bytes = app.to_binary();
        let (_, _, header_len) = decode_header(&bytes).unwrap();
        // Flip each payload byte: every flip must be rejected.
        for i in header_len..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0x01;
            assert!(
                ApplicationTrace::from_binary(&corrupted).is_err(),
                "payload flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn content_hash_matches_header_hash_and_is_sensitive() {
        let app = sample_app();
        let bytes = app.to_binary();
        let (_, _, header_len) = decode_header(&bytes).unwrap();
        assert_eq!(app.content_hash(), fnv1a(&bytes[..header_len]));

        // Any change to any instruction changes the hash.
        let mut other = sample_app();
        other.name = "renamed".to_owned();
        assert_ne!(app.content_hash(), other.content_hash());
    }

    #[test]
    fn writer_matches_to_binary() {
        let app = sample_app();
        let mut w = ChunkedTraceWriter::new(&app.name);
        for k in app.kernels() {
            w.add_kernel(k);
        }
        assert_eq!(w.num_kernels(), 1);
        assert_eq!(w.finish(), app.to_binary());
    }

    #[test]
    fn file_round_trip() {
        let app = sample_app();
        let dir = std::env::temp_dir().join("swiftsim_binfmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.sstraceb");
        app.write_binary_file(&path).unwrap();
        assert_eq!(ApplicationTrace::read_binary_file(&path).unwrap(), app);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_with_path() {
        let err = ApplicationTrace::read_binary_file("/definitely/not/here.sstraceb").unwrap_err();
        match &err {
            TraceError::Io { path, kind, .. } => {
                assert!(path.contains("here.sstraceb"), "{err}");
                assert_eq!(*kind, std::io::ErrorKind::NotFound);
            }
            other => panic!("expected Io error, got {other:?}"),
        }
    }

    #[test]
    fn empty_app_round_trips() {
        let app = ApplicationTrace::new("empty", vec![]);
        let back = ApplicationTrace::from_binary(&app.to_binary()).unwrap();
        assert_eq!(back, app);
    }
}
