//! Compact binary trace format (`.sstraceb`).
//!
//! Text traces are convenient to inspect but large: real NVBit captures run
//! to gigabytes. This module provides a varint-packed binary encoding that
//! is typically 3–6x smaller than the text format and parses without any
//! string processing. The encoding is self-describing (magic + version) and
//! deliberately simple:
//!
//! ```text
//! "SSTB" u8-version
//! app-name
//! kernel-count { name grid(3) block(3) shmem regs
//!                block-count { warp-count { inst-count { instruction } } } }
//! ```
//!
//! All integers are LEB128 varints; strings are length-prefixed UTF-8. An
//! instruction is `pc opcode flags [dst] srcs... mask [space width addrs]`
//! where `flags` packs the destination presence, source count, and
//! address-list kind.

use crate::error::TraceError;
use crate::inst::{AddressList, MemInfo, Reg, TraceInstruction};
use crate::isa::Opcode;
use crate::kernel::{ApplicationTrace, KernelTrace, WarpTrace};

const MAGIC: &[u8; 4] = b"SSTB";
const VERSION: u8 = 1;

// Flag bits of the per-instruction header byte.
const FLAG_HAS_DST: u8 = 0b0000_0001;
const FLAG_HAS_MEM: u8 = 0b0000_0010;
const FLAG_EXPLICIT_ADDRS: u8 = 0b0000_0100;
const SRC_COUNT_SHIFT: u8 = 4;

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn push_string(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn err(&self, what: &str) -> TraceError {
        TraceError::invalid_value("binary trace", format!("{what} at byte {}", self.pos))
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or_else(|| self.err("overflow"))?;
        if end > self.bytes.len() {
            return Err(self.err("unexpected end of data"));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn byte(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let b = self.byte()?;
            v |= u64::from(b & 0x7f) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(self.err("varint too long"))
    }

    fn varint_u32(&mut self, what: &str) -> Result<u32, TraceError> {
        u32::try_from(self.varint()?).map_err(|_| self.err(what))
    }

    fn string(&mut self) -> Result<String, TraceError> {
        let len = self.varint()? as usize;
        if len > 1 << 20 {
            return Err(self.err("string too long"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| self.err("invalid UTF-8"))
    }
}

fn encode_inst(out: &mut Vec<u8>, inst: &TraceInstruction) {
    push_varint(out, u64::from(inst.pc));
    let op_index = Opcode::ALL
        .iter()
        .position(|&o| o == inst.opcode)
        .expect("opcode is in ALL") as u8;
    out.push(op_index);

    let mut flags = 0u8;
    if inst.dst.is_some() {
        flags |= FLAG_HAS_DST;
    }
    let explicit = matches!(
        inst.mem.as_ref().map(|m| &m.addresses),
        Some(AddressList::Explicit(_))
    );
    if inst.mem.is_some() {
        flags |= FLAG_HAS_MEM;
    }
    if explicit {
        flags |= FLAG_EXPLICIT_ADDRS;
    }
    flags |= (inst.srcs.len().min(15) as u8) << SRC_COUNT_SHIFT;
    out.push(flags);

    if let Some(dst) = inst.dst {
        push_varint(out, u64::from(dst.0));
    }
    for src in &inst.srcs {
        push_varint(out, u64::from(src.0));
    }
    push_varint(out, u64::from(inst.active_mask));

    if let Some(mem) = &inst.mem {
        out.push(mem.width);
        match &mem.addresses {
            AddressList::Strided { base, stride } => {
                push_varint(out, *base);
                push_varint(out, *stride);
            }
            AddressList::Explicit(addrs) => {
                push_varint(out, addrs.len() as u64);
                // Delta-encode: consecutive-lane addresses are near each
                // other in practice, keeping varints short.
                let mut prev = 0u64;
                for &a in addrs {
                    push_varint(out, a.wrapping_sub(prev));
                    prev = a;
                }
            }
        }
    }
}

fn decode_inst(r: &mut Reader<'_>) -> Result<TraceInstruction, TraceError> {
    let pc = r.varint_u32("pc out of range")?;
    let op_index = r.byte()? as usize;
    let opcode = *Opcode::ALL
        .get(op_index)
        .ok_or_else(|| r.err("opcode index out of range"))?;
    let flags = r.byte()?;
    let dst = if flags & FLAG_HAS_DST != 0 {
        Some(Reg(
            u16::try_from(r.varint()?).map_err(|_| r.err("dst register"))?
        ))
    } else {
        None
    };
    let n_srcs = usize::from(flags >> SRC_COUNT_SHIFT);
    let mut srcs = Vec::with_capacity(n_srcs);
    for _ in 0..n_srcs {
        srcs.push(Reg(
            u16::try_from(r.varint()?).map_err(|_| r.err("src register"))?
        ));
    }
    let active_mask = r.varint_u32("active mask")?;

    let mem = if flags & FLAG_HAS_MEM != 0 {
        let space = opcode
            .mem_space()
            .ok_or_else(|| r.err("memory payload on non-memory opcode"))?;
        let width = r.byte()?;
        let addresses = if flags & FLAG_EXPLICIT_ADDRS != 0 {
            let n = r.varint()? as usize;
            if n > 32 {
                return Err(r.err("more than 32 lane addresses"));
            }
            let mut addrs = Vec::with_capacity(n);
            let mut prev = 0u64;
            for _ in 0..n {
                prev = prev.wrapping_add(r.varint()?);
                addrs.push(prev);
            }
            AddressList::Explicit(addrs)
        } else {
            let base = r.varint()?;
            let stride = r.varint()?;
            AddressList::Strided { base, stride }
        };
        Some(MemInfo {
            space,
            width,
            addresses,
        })
    } else {
        None
    };

    let inst = TraceInstruction {
        pc,
        opcode,
        dst,
        srcs,
        active_mask,
        mem,
    };
    if !inst.is_well_formed() {
        return Err(r.err("inconsistent instruction"));
    }
    Ok(inst)
}

impl ApplicationTrace {
    /// Serialize to the compact binary format.
    pub fn to_binary(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.push(VERSION);
        push_string(&mut out, &self.name);
        push_varint(&mut out, self.kernels().len() as u64);
        for kernel in self.kernels() {
            push_string(&mut out, &kernel.name);
            for d in [kernel.grid_dim.x, kernel.grid_dim.y, kernel.grid_dim.z] {
                push_varint(&mut out, u64::from(d));
            }
            for d in [kernel.block_dim.x, kernel.block_dim.y, kernel.block_dim.z] {
                push_varint(&mut out, u64::from(d));
            }
            push_varint(&mut out, u64::from(kernel.shared_mem_bytes));
            push_varint(&mut out, u64::from(kernel.regs_per_thread));
            push_varint(&mut out, kernel.blocks().len() as u64);
            for block in kernel.blocks() {
                push_varint(&mut out, block.num_warps() as u64);
                for warp in block.warps() {
                    push_varint(&mut out, warp.len() as u64);
                    for inst in warp {
                        encode_inst(&mut out, inst);
                    }
                }
            }
        }
        out
    }

    /// Stable identity of the trace's full content: FNV-1a over the binary
    /// serialization (which is versioned, so a format change also changes
    /// every hash).
    ///
    /// Two traces hash equal exactly when every kernel, block, warp, and
    /// instruction — including addresses and active masks — is identical.
    /// The campaign engine uses this as the trace component of its
    /// content-addressed cache keys; `DefaultHasher` would not survive a
    /// toolchain upgrade.
    pub fn content_hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.to_binary() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Parse the compact binary format.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::InvalidValue`] on a bad magic/version, a
    /// truncated stream, or any field outside its domain.
    pub fn from_binary(bytes: &[u8]) -> Result<ApplicationTrace, TraceError> {
        let mut r = Reader::new(bytes);
        if r.take(4)? != MAGIC {
            return Err(TraceError::invalid_value("binary trace", "bad magic"));
        }
        let version = r.byte()?;
        if version != VERSION {
            return Err(TraceError::invalid_value(
                "binary trace version",
                version.to_string(),
            ));
        }
        let name = r.string()?;
        let num_kernels = r.varint()? as usize;
        if num_kernels > 1 << 20 {
            return Err(r.err("kernel count"));
        }
        let mut kernels = Vec::with_capacity(num_kernels);
        for _ in 0..num_kernels {
            let kname = r.string()?;
            let g = [
                r.varint_u32("grid dim")?,
                r.varint_u32("grid dim")?,
                r.varint_u32("grid dim")?,
            ];
            let b = [
                r.varint_u32("block dim")?,
                r.varint_u32("block dim")?,
                r.varint_u32("block dim")?,
            ];
            let mut kernel = KernelTrace::new(kname, (g[0], g[1], g[2]), (b[0], b[1], b[2]));
            kernel.shared_mem_bytes = r.varint_u32("shared memory")?;
            kernel.regs_per_thread = r.varint_u32("registers")?;
            let num_blocks = r.varint()? as usize;
            if num_blocks > 1 << 24 {
                return Err(r.err("block count"));
            }
            for _ in 0..num_blocks {
                let block = kernel.push_block();
                let num_warps = r.varint()? as usize;
                if num_warps > 1 << 16 {
                    return Err(r.err("warp count"));
                }
                for _ in 0..num_warps {
                    let num_insts = r.varint()? as usize;
                    if num_insts > 1 << 28 {
                        return Err(r.err("instruction count"));
                    }
                    let mut warp = WarpTrace::new();
                    for _ in 0..num_insts {
                        warp.push(decode_inst(&mut r)?);
                    }
                    *block.push_warp() = warp;
                }
            }
            kernels.push(kernel);
        }
        if r.pos != bytes.len() {
            return Err(r.err("trailing bytes"));
        }
        Ok(ApplicationTrace::new(name, kernels))
    }

    /// Write the binary format to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating or writing the file.
    pub fn write_binary_file(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_binary())
    }

    /// Read the binary format from `path`.
    ///
    /// # Errors
    ///
    /// Returns an [`std::io::Error`] (parse failures wrapped as
    /// `InvalidData`).
    pub fn read_binary_file(
        path: impl AsRef<std::path::Path>,
    ) -> std::io::Result<ApplicationTrace> {
        let bytes = std::fs::read(path)?;
        ApplicationTrace::from_binary(&bytes)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::InstBuilder;

    fn sample_app() -> ApplicationTrace {
        let mut kernel = KernelTrace::new("k0", (2, 1, 1), (64, 1, 1));
        kernel.shared_mem_bytes = 2048;
        kernel.regs_per_thread = 40;
        for b in 0u64..2 {
            let block = kernel.push_block();
            for w in 0u64..2 {
                let warp = block.push_warp();
                warp.push(
                    InstBuilder::new(Opcode::Ldg)
                        .pc(0)
                        .dst(4)
                        .src(1)
                        .global_strided(0x10_0000 + b * 0x1000 + w * 0x100, 4, 4),
                );
                warp.push(InstBuilder::new(Opcode::Ffma).pc(16).dst(5).src(4).src(4));
                warp.push(
                    InstBuilder::new(Opcode::Stg)
                        .pc(32)
                        .src(5)
                        .explicit_addrs(vec![0x40, 0x99, 0x80, 0x20_0000], 4),
                );
                warp.push(InstBuilder::new(Opcode::Bar).pc(48));
                warp.push(InstBuilder::new(Opcode::Exit).pc(64).mask(0x00ff_00ff));
            }
        }
        ApplicationTrace::new("binary_sample", vec![kernel])
    }

    #[test]
    fn round_trip() {
        let app = sample_app();
        let bytes = app.to_binary();
        let back = ApplicationTrace::from_binary(&bytes).expect("round trip");
        assert_eq!(back, app);
    }

    #[test]
    fn binary_is_smaller_than_text() {
        let app = sample_app();
        assert!(app.to_binary().len() < app.to_trace_text().len());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample_app().to_binary();
        bytes[0] = b'X';
        assert!(ApplicationTrace::from_binary(&bytes).is_err());
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = sample_app().to_binary();
        bytes[4] = 99;
        assert!(ApplicationTrace::from_binary(&bytes).is_err());
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = sample_app().to_binary();
        // Any prefix must fail, never panic.
        for cut in 0..bytes.len() {
            assert!(
                ApplicationTrace::from_binary(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = sample_app().to_binary();
        bytes.push(0);
        assert!(ApplicationTrace::from_binary(&bytes).is_err());
    }

    #[test]
    fn corrupt_bytes_never_panic() {
        // Flip every byte (one at a time): decoding must return, not panic.
        let bytes = sample_app().to_binary();
        for i in 0..bytes.len() {
            let mut corrupted = bytes.clone();
            corrupted[i] ^= 0xff;
            let _ = ApplicationTrace::from_binary(&corrupted);
        }
    }

    #[test]
    fn file_round_trip() {
        let app = sample_app();
        let dir = std::env::temp_dir().join("swiftsim_binfmt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.sstraceb");
        app.write_binary_file(&path).unwrap();
        assert_eq!(ApplicationTrace::read_binary_file(&path).unwrap(), app);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_app_round_trips() {
        let app = ApplicationTrace::new("empty", vec![]);
        let back = ApplicationTrace::from_binary(&app.to_binary()).unwrap();
        assert_eq!(back, app);
    }
}
