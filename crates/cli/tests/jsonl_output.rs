//! Machine-readable stdout stays machine-readable.
//!
//! `swiftsim campaign --json` and `swiftsim --json` promise strict JSON
//! lines on stdout; all human chatter (progress, heartbeats, simulation
//! banners) belongs on stderr. These tests run the real binary and parse
//! *every* stdout line, so any stray `println!` sneaking into the
//! campaign executor or CLI breaks the build, not a user's pipeline.

use std::io::Write as _;
use std::process::Command;
use swiftsim_metrics::Json;

fn swiftsim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_swiftsim"))
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("swiftsim-jsonl-{}-{name}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Every stdout line must parse as a JSON object; blank lines are not
/// tolerated either (strict JSONL).
fn assert_strict_jsonl(stdout: &[u8]) -> Vec<Json> {
    let text = std::str::from_utf8(stdout).expect("stdout is UTF-8");
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let parsed = Json::parse(line)
            .unwrap_or_else(|e| panic!("stdout line {} is not JSON ({e}): {line:?}", i + 1));
        assert!(
            matches!(parsed, Json::Obj(_)),
            "stdout line {} is JSON but not an object: {line:?}",
            i + 1
        );
        rows.push(parsed);
    }
    rows
}

#[test]
fn campaign_json_stdout_is_strict_jsonl_with_chatter_on_stderr() {
    let dir = scratch("campaign");
    let spec_path = dir.join("sweep.campaign");
    let mut spec = std::fs::File::create(&spec_path).unwrap();
    write!(
        spec,
        "name = jsonl-regress\n\
         workload = nw, bfs\n\
         scale = tiny\n\
         preset = swift-sim-basic, swift-sim-memory\n"
    )
    .unwrap();
    drop(spec);

    let output = swiftsim()
        .arg("campaign")
        .arg(&spec_path)
        .args(["--json", "--no-cache", "--jobs", "2"])
        .output()
        .expect("swiftsim campaign runs");
    assert!(
        output.status.success(),
        "campaign failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let rows = assert_strict_jsonl(&output.stdout);
    assert_eq!(rows.len(), 4, "one JSONL row per job");
    for row in &rows {
        assert_eq!(row.get("status").and_then(Json::as_str), Some("ok"));
        assert!(row.get("result").is_some(), "row embeds the result");
    }

    // The progress chatter still happened — on stderr, where it belongs.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(
        stderr.contains("[1/4]") && stderr.contains("[4/4]"),
        "progress lines expected on stderr, got: {stderr}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn single_run_json_stdout_is_one_json_object() {
    let output = swiftsim()
        .args([
            "--json",
            "--workload",
            "nw",
            "--scale",
            "tiny",
            "--preset",
            "swift-memory",
        ])
        .output()
        .expect("swiftsim runs");
    assert!(
        output.status.success(),
        "run failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let rows = assert_strict_jsonl(&output.stdout);
    assert_eq!(rows.len(), 1, "exactly one JSON object on stdout");
    assert!(rows[0].get("cycles").is_some());

    // The human banner went to stderr.
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("simulating"), "banner on stderr: {stderr}");
}
