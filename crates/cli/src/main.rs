//! `swiftsim` — the Swift-Sim command-line driver.
//!
//! Runs any simulator preset on a hardware configuration and an
//! application trace, and prints the Metrics Gatherer report:
//!
//! ```text
//! swiftsim --preset swift-basic --gpu rtx2080ti --workload bfs --scale small
//! swiftsim --preset detailed --config my_gpu.cfg --trace app.sstrace
//! swiftsim --list-workloads
//! swiftsim --dump-config rtx3090 > rtx3090.cfg
//! swiftsim --dump-trace nw --scale tiny > nw.sstrace
//! swiftsim campaign sweep.campaign --jobs 8 --out results.jsonl
//! swiftsim serve --listen 127.0.0.1:7733
//! swiftsim serve --worker 127.0.0.1:7733
//! swiftsim submit sweep.campaign --to 127.0.0.1:7733
//! ```

use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;
use swiftsim_campaign::{run_campaign, CampaignOptions, CampaignSpec};
use swiftsim_config::{presets, GpuConfig};
use swiftsim_core::{FidelityConfig, GpuSimulator, RunOptions, SimulatorPreset};
use swiftsim_metrics::Json;
use swiftsim_serve::client::ServeClient;
use swiftsim_serve::server::{self, ServeOptions};
use swiftsim_serve::worker::{run_worker_with_retry, WorkerOptions};
use swiftsim_trace::{open_trace, TraceSource};
use swiftsim_workloads::Scale;

const USAGE: &str = "\
swiftsim — modular and hybrid GPU architecture simulation

USAGE:
    swiftsim [OPTIONS]
    swiftsim campaign <SPEC> [CAMPAIGN OPTIONS]
    swiftsim serve [SERVE OPTIONS]
    swiftsim submit <SPEC> [SUBMIT OPTIONS]
    swiftsim validate [VALIDATE OPTIONS]

FIDELITY GRAMMAR (one grammar, every surface):
    Per-module fidelity is selected by `-sim_*` key/value pairs. Valid keys:
    -sim_alu_model, -sim_mem_model, -sim_frontend_model, -sim_skip_policy,
    -sim_sync_quantum, -sim_sampling. The pairs may be given as bare
    arguments (`swiftsim -sim_sampling cluster:2 ...`, also after
    `campaign`), bundled in --fidelity \"<OPTS>\" (same keys, quoted), or as
    spec-file axes for campaign/submit (alu-model / mem-model / frontend /
    skip / sampling lines take the same value tokens). For campaign, each
    key's value may be a comma-separated axis (no spaces, `default` keeps
    the preset's policy): `-sim_sampling off,cluster:2`. An unknown
    `-sim_*` key is an error that lists the valid keys.

OPTIONS:
    --preset <detailed|swift-basic|swift-memory>   simulator preset [default: swift-basic]
    --fidelity \"<OPTS>\"                            per-module fidelity overrides on top of the
                                                   preset, GPGPU-Sim option style, e.g.
                                                   \"-sim_alu_model analytical -sim_skip_policy dense\"
                                                   (see FIDELITY GRAMMAR; bare -sim_* pairs
                                                   are accepted too)
    --gpu <rtx2080ti|rtx3060|rtx3090>              built-in hardware preset [default: rtx2080ti]
    --config <FILE>                                hardware config file (overrides --gpu)
    --workload <NAME>                              built-in synthetic workload
    --trace <FILE>                                 application trace file (overrides --workload)
    --scale <tiny|small|paper>                     workload scale [default: small]
    --threads <N>                                  worker threads; 0 = auto (one per core,
                                                   capped at the GPU's SM count) [default: 1]
    --profile                                      self-profile the simulator and print a
                                                   per-module wall-time attribution table
    --trace-out <FILE>                             write the profile as a Chrome trace-event /
                                                   Perfetto JSON file (implies --profile)
    --checkpoint-out <FILE>                        write a resumable snapshot of the simulation
                                                   at every kernel boundary (atomic overwrite)
    --resume <FILE>                                resume from a snapshot written by
                                                   --checkpoint-out; the completed prefix is
                                                   replayed from the snapshot bit-identically
    --halt-after <N>                               stop cleanly after N kernels have completed
                                                   (the result covers the simulated prefix;
                                                   with --checkpoint-out this is a
                                                   deterministic \"kill mid-app\")
    --json                                         print the result as JSON instead of a report
    --list-workloads                               list built-in workloads and exit
    --dump-config <GPU>                            print a GPU preset as a config file and exit
    --dump-trace <NAME>                            print a workload's trace and exit
    --dump-trace-bin <NAME> <FILE>                 write a workload's binary trace and exit
    --help                                         show this help

CAMPAIGN OPTIONS (after `swiftsim campaign <SPEC>`):
    --fidelity \"<OPTS>\" / bare -sim_* pairs        force one fidelity override across every job
                                                   (replaces the spec's matching axis; same
                                                   keys as the FIDELITY GRAMMAR above, except
                                                   -sim_sync_quantum which has no campaign axis)
    --checkpoint-dir <DIR>                         checkpoint every job at kernel boundaries
                                                   into DIR; a killed campaign resumes each
                                                   interrupted job from its last snapshot
    --jobs <N>                                     concurrent simulations [default: one per CPU]
    --no-cache                                     neither read nor write the result cache
    --refresh                                      ignore cached results but overwrite them
    --cache-dir <DIR>                              result cache root [default: target/swiftsim-campaigns/cache]
    --out <FILE>                                   also write all rows as JSON lines to FILE
    --json                                         print JSON lines to stdout instead of the table
    --profile                                      self-profile every job (heartbeats + per-job
                                                   module attribution in the JSONL rows)

SERVE OPTIONS (after `swiftsim serve`):
    --listen <ADDR>                                coordinator listen address [default: 127.0.0.1:7733]
                                                   (port 0 picks a free port; the bound address is
                                                   printed to stdout as a JSON \"serving\" line)
    --worker <ADDR>                                run as a remote worker for the coordinator at
                                                   ADDR instead of serving
    --name <NAME>                                  worker name for diagnostics [default: worker]
    --local-slots <N>                              local executor threads; 0 = remote workers only
                                                   [default: one per CPU]
    --cache-dir <DIR>                              on-disk result cache root
    --no-cache / --refresh                         on-disk cache policy, as in campaigns
    --retries <N>                                  per-task simulation retries [default: 1]
    --lease-secs <N>                               take tasks back from silent workers after N
                                                   seconds [default: 300]
    --trace-out <FILE>                             record a task-lifecycle trace: workers ship
                                                   their profiler tracks back and the daemon
                                                   writes one merged Perfetto JSON file with
                                                   coordinator and worker tracks on drain
    --events-out <FILE>                            write the flight recorder as JSON lines on
                                                   deadlock, panic, exhausted worker-loss
                                                   budget, or a dump-events request
    --flight-capacity <N>                          flight-recorder ring size; 0 disables it
                                                   [default: 4096]
    --checkpoint-dir <DIR>                         checkpoint local tasks at kernel boundaries
                                                   into DIR; after a crash or drain, restarted
                                                   tasks resume from their last snapshot

SUBMIT OPTIONS (after `swiftsim submit <SPEC>`):
    --to <ADDR>                                    daemon address [default: 127.0.0.1:7733]
    --client <NAME>                                client name for fair scheduling [default: $USER]
    --priority <N>                                 higher runs earlier within this client [default: 0]
    --timeout-secs <N>                             give up waiting after N seconds [default: 3600]
    --no-wait                                      print the job id and exit without waiting
    --out <FILE>                                   also write result rows as JSON lines to FILE
    --stats                                        print daemon statistics as JSON and exit
    --metrics                                      print the daemon's Prometheus-style metrics
                                                   exposition (counters, gauges, latency
                                                   histograms) and exit; with --json, print
                                                   the structured JSON form instead
    --dump-events                                  print the daemon's flight-recorder ring as
                                                   JSON lines and exit
    --drain                                        ask the daemon to drain and exit

VALIDATE OPTIONS (after `swiftsim validate`):
    Runs every selected fidelity preset across the workload suite,
    correlates each preset's typed stats (cycles, IPC, L1/L2 miss rates,
    DRAM traffic) against the silicon oracle, and prints per-stat MAPE,
    Pearson and Spearman rank correlation, and worst-offender tables —
    one figure-style table per (preset x GPU). Deterministic end to end,
    so the MAPE numbers are exactly reproducible and CI can gate on them.
    --scale <tiny|small|paper>                     workload scale [default: tiny]
    --apps <a,b,...>                               comma-separated application subset
                                                   [default: the full 20-app suite]
    --gpu <g1,g2,...>                              GPU presets to validate on
                                                   [default: rtx2080ti]
    --preset <p1,p2,...>                           presets to validate [default: all three]
    --threads <N>                                  worker threads per simulation [default: 1]
    --top <N>                                      worst offenders kept per stat [default: 3]
    --json <FILE>                                  also write the accuracy report (the
                                                   BENCH_accuracy.json schema) to FILE
    --write-thresholds <FILE>                      write CI gate bounds: this run's per-stat
                                                   MAPE plus --slack, with the exact suite
                                                   configuration recorded for replay
    --slack <F>                                    absolute MAPE margin added to bounds
                                                   [default: 0.05]
    --check <FILE>                                 accuracy-gate mode: re-run the suite the
                                                   thresholds file records, compare MAPE
                                                   against its bounds, exit nonzero listing
                                                   every violation (config flags above are
                                                   ignored; the file is the configuration)
    --oracle accelsim:<FILE>                       score against an imported Accel-Sim-style
                                                   stat file instead of the silicon oracle
    --inject-drift <F>                             multiply every prediction by F (gate
                                                   self-test; proves the gate fails)
";

fn main() -> ExitCode {
    match run(std::env::args().skip(1).collect()) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Write to stdout, treating a broken pipe (e.g. `swiftsim ... | head`) as
/// a clean exit instead of a panic.
fn emit(text: &str) {
    let mut out = std::io::stdout().lock();
    if let Err(e) = out.write_all(text.as_bytes()) {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(0);
        }
        eprintln!("error: cannot write to stdout: {e}");
        std::process::exit(1);
    }
}

#[derive(Debug)]
struct Args {
    preset: SimulatorPreset,
    fidelity: Option<String>,
    gpu: GpuConfig,
    workload: Option<String>,
    trace_file: Option<String>,
    scale: Scale,
    threads: usize,
    json: bool,
    profile: bool,
    trace_out: Option<String>,
    checkpoint_out: Option<String>,
    resume: Option<String>,
    halt_after: Option<usize>,
}

#[derive(Debug)]
struct CampaignArgs {
    spec_path: String,
    options: CampaignOptions,
    /// `-sim_*` pairs forced across every job (from `--fidelity` and bare
    /// pairs alike), replacing the spec's matching axes.
    fidelity: Option<String>,
    out: Option<String>,
    json: bool,
}

/// Append one `-sim_*` key/value pair (or a whole `--fidelity` string) to
/// an accumulated fidelity-override text. Both spellings funnel into the
/// same string so they compose in either order.
fn push_fidelity_text(acc: &mut Option<String>, text: &str) {
    let acc = acc.get_or_insert_with(String::new);
    if !acc.is_empty() {
        acc.push(' ');
    }
    acc.push_str(text);
}

fn parse_campaign_args(mut argv: Vec<String>) -> Result<CampaignArgs, String> {
    let mut spec_path = None;
    let mut options = CampaignOptions::default();
    let mut fidelity = None;
    let mut out = None;
    let mut json = false;

    let mut it = argv.drain(..);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--jobs" => {
                options.workers = value("--jobs")?
                    .parse()
                    .map_err(|_| "invalid job count".to_owned())?;
            }
            "--no-cache" => options = options.cache_off(),
            "--refresh" => options = options.refresh(),
            "--profile" => options.profile = true,
            "--cache-dir" => options.cache_dir = value("--cache-dir")?.into(),
            "--checkpoint-dir" => options.checkpoint_dir = Some(value("--checkpoint-dir")?.into()),
            "--fidelity" => {
                let text = value("--fidelity")?;
                push_fidelity_text(&mut fidelity, &text);
            }
            "--out" => out = Some(value("--out")?),
            "--json" => json = true,
            sim_key if sim_key.starts_with("-sim_") => {
                let v = value(sim_key)?;
                push_fidelity_text(&mut fidelity, &format!("{sim_key} {v}"));
            }
            other if !other.starts_with('-') && spec_path.is_none() => {
                spec_path = Some(other.to_owned());
            }
            other => return Err(format!("unknown campaign option {other:?} (try --help)")),
        }
    }
    Ok(CampaignArgs {
        spec_path: spec_path.ok_or("campaign needs a spec file (try --help)")?,
        options,
        fidelity,
        out,
        json,
    })
}

/// Force `-sim_*` overrides across every job of a campaign by replacing
/// the spec's matching sweep axes with the single given value. Uses the
/// same key grammar as `--fidelity` on a plain run; `-sim_sync_quantum`
/// is rejected because the engine quantum has no campaign axis.
fn apply_fidelity_axes(spec: &mut CampaignSpec, text: &str) -> Result<(), String> {
    // Each key's value is a comma-separated axis (no spaces: the grammar
    // is whitespace-tokenized); `default` keeps the preset's own policy
    // for that cell, mirroring campaign spec files.
    fn one<T: std::str::FromStr>(key: &str, value: &str) -> Result<Vec<Option<T>>, String>
    where
        T::Err: std::fmt::Display,
    {
        value
            .split(',')
            .filter(|v| !v.is_empty())
            .map(|v| match v {
                "default" => Ok(None),
                v => v
                    .parse::<T>()
                    .map(Some)
                    .map_err(|e| format!("invalid {key} value {v:?}: {e}")),
            })
            .collect::<Result<Vec<_>, _>>()
            .and_then(|axis| {
                if axis.is_empty() {
                    Err(format!("{key} has an empty value list"))
                } else {
                    Ok(axis)
                }
            })
    }

    let mut tokens = text.split_whitespace();
    while let Some(token) = tokens.next() {
        let value = tokens
            .next()
            .ok_or_else(|| format!("fidelity option {token:?} is missing its value"))?;
        match token {
            "-sim_alu_model" => spec.alu_models = one(token, value)?,
            "-sim_mem_model" => spec.mem_models = one(token, value)?,
            "-sim_frontend_model" => spec.frontends = one(token, value)?,
            "-sim_skip_policy" => spec.skips = one(token, value)?,
            "-sim_sampling" => spec.samplings = one(token, value)?,
            "-sim_sync_quantum" => {
                return Err(
                    "-sim_sync_quantum has no campaign axis (set it per run, not per sweep)"
                        .to_owned(),
                )
            }
            other => {
                return Err(format!(
                    "unknown fidelity option {other:?} (expected -sim_alu_model, -sim_mem_model, \
                     -sim_frontend_model, -sim_skip_policy, or -sim_sampling)"
                ))
            }
        }
    }
    Ok(())
}

fn parse_args(mut argv: Vec<String>) -> Result<Option<Args>, String> {
    let mut preset = SimulatorPreset::SwiftBasic;
    let mut fidelity = None;
    let mut gpu = presets::rtx2080ti();
    let mut workload = None;
    let mut trace_file = None;
    let mut scale = Scale::Small;
    let mut threads = 1usize;
    let mut json = false;
    let mut profile = false;
    let mut trace_out = None;
    let mut checkpoint_out = None;
    let mut resume = None;
    let mut halt_after = None;

    let mut it = argv.drain(..);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                emit(USAGE);
                return Ok(None);
            }
            "--list-workloads" => {
                let mut out = String::new();
                for w in swiftsim_workloads::suite() {
                    out.push_str(&format!("{:<12} {}\n", w.name, w.suite));
                }
                emit(&out);
                return Ok(None);
            }
            "--dump-config" => {
                let name = value("--dump-config")?;
                let cfg = presets::by_name(&name)
                    .ok_or_else(|| format!("unknown GPU preset {name:?}"))?;
                emit(&cfg.to_config_text());
                return Ok(None);
            }
            "--dump-trace" => {
                let name = value("--dump-trace")?;
                let w = find_workload(&name)?;
                emit(&w.generate(scale).to_trace_text());
                return Ok(None);
            }
            "--dump-trace-bin" => {
                let name = value("--dump-trace-bin")?;
                let path = value("--dump-trace-bin")?;
                let w = find_workload(&name)?;
                w.generate(scale)
                    .write_binary_file(&path)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                return Ok(None);
            }
            "--preset" => {
                preset = match value("--preset")?.as_str() {
                    "detailed" | "accelsim" => SimulatorPreset::Detailed,
                    "swift-basic" | "basic" => SimulatorPreset::SwiftBasic,
                    "swift-memory" | "memory" => SimulatorPreset::SwiftMemory,
                    other => return Err(format!("unknown preset {other:?}")),
                };
            }
            "--fidelity" => {
                let text = value("--fidelity")?;
                push_fidelity_text(&mut fidelity, &text);
            }
            "--gpu" => {
                let name = value("--gpu")?;
                gpu = presets::by_name(&name)
                    .ok_or_else(|| format!("unknown GPU preset {name:?}"))?;
            }
            "--config" => {
                let path = value("--config")?;
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                gpu = GpuConfig::parse(&text).map_err(|e| e.to_string())?;
            }
            "--workload" => workload = Some(value("--workload")?),
            "--trace" => trace_file = Some(value("--trace")?),
            "--scale" => {
                scale = match value("--scale")?.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "paper" => Scale::Paper,
                    other => return Err(format!("unknown scale {other:?}")),
                };
            }
            "--threads" => {
                threads = value("--threads")?
                    .parse()
                    .map_err(|_| "invalid thread count".to_owned())?;
            }
            "--json" => json = true,
            "--profile" => profile = true,
            "--trace-out" => {
                trace_out = Some(value("--trace-out")?);
                profile = true;
            }
            "--checkpoint-out" => checkpoint_out = Some(value("--checkpoint-out")?),
            "--resume" => resume = Some(value("--resume")?),
            "--halt-after" => {
                halt_after = Some(
                    value("--halt-after")?
                        .parse()
                        .map_err(|_| "invalid kernel count".to_owned())?,
                );
            }
            // Bare `-sim_*` pairs are sugar for --fidelity "<key> <value>";
            // both spellings funnel into one override string, so they
            // compose in either order.
            sim_key if sim_key.starts_with("-sim_") => {
                let v = value(sim_key)?;
                push_fidelity_text(&mut fidelity, &format!("{sim_key} {v}"));
            }
            other => return Err(format!("unknown option {other:?} (try --help)")),
        }
    }
    Ok(Some(Args {
        preset,
        fidelity,
        gpu,
        workload,
        trace_file,
        scale,
        threads,
        json,
        profile,
        trace_out,
        checkpoint_out,
        resume,
        halt_after,
    }))
}

/// Apply GPGPU-Sim-style `-sim_*` fidelity overrides on top of a preset's
/// module choices. Unlike `FidelityConfig::parse_args` (which starts from
/// the default config and tolerates foreign options inside a config file),
/// the `--fidelity` flag carries *only* fidelity keys, so every token must
/// be one.
fn apply_fidelity_text(fidelity: &mut FidelityConfig, text: &str) -> Result<(), String> {
    let mut tokens = text.split_whitespace();
    while let Some(token) = tokens.next() {
        let value = tokens
            .next()
            .ok_or_else(|| format!("fidelity option {token:?} is missing its value"))?;
        if !fidelity
            .apply_option(token, value)
            .map_err(|e| e.to_string())?
        {
            return Err(format!(
                "unknown fidelity option {token:?} (expected -sim_alu_model, -sim_mem_model, \
                 -sim_frontend_model, -sim_skip_policy, -sim_sync_quantum, or -sim_sampling)"
            ));
        }
    }
    Ok(())
}

fn find_workload(name: &str) -> Result<swiftsim_workloads::Workload, String> {
    swiftsim_workloads::suite()
        .into_iter()
        .find(|w| w.name == name)
        .ok_or_else(|| format!("unknown workload {name:?} (see --list-workloads)"))
}

fn run_campaign_cmd(argv: Vec<String>) -> Result<(), String> {
    let args = parse_campaign_args(argv)?;
    let text = std::fs::read_to_string(&args.spec_path)
        .map_err(|e| format!("cannot read {}: {e}", args.spec_path))?;
    let mut spec = CampaignSpec::parse(&text).map_err(|e| e.to_string())?;
    if let Some(overrides) = &args.fidelity {
        apply_fidelity_axes(&mut spec, overrides)?;
    }

    let mut options = args.options;
    options.progress = true;
    let report = run_campaign(&spec, &options).map_err(|e| e.to_string())?;

    if let Some(path) = &args.out {
        std::fs::write(path, report.to_jsonl()).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if args.json {
        emit(&report.to_jsonl());
    } else {
        emit(&format!(
            "{}\n{}\n",
            report.summary_table(),
            report.summary_line()
        ));
    }
    if report.failed() > 0 {
        return Err(format!("{} job(s) failed", report.failed()));
    }
    Ok(())
}

#[derive(Debug)]
struct ServeArgs {
    options: ServeOptions,
    /// `Some(coordinator)` runs as a remote worker instead of a daemon.
    worker: Option<String>,
    name: String,
}

fn parse_serve_args(mut argv: Vec<String>) -> Result<ServeArgs, String> {
    let mut options = ServeOptions::default();
    let mut worker = None;
    let mut name = "worker".to_owned();

    let mut it = argv.drain(..);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--listen" => options.listen = value("--listen")?,
            "--worker" => worker = Some(value("--worker")?),
            "--name" => name = value("--name")?,
            "--local-slots" => {
                options.local_slots = Some(
                    value("--local-slots")?
                        .parse()
                        .map_err(|_| "invalid slot count".to_owned())?,
                );
            }
            "--cache-dir" => options.cache_dir = value("--cache-dir")?.into(),
            "--no-cache" => options.cache = swiftsim_campaign::CacheMode::Off,
            "--refresh" => options.cache = swiftsim_campaign::CacheMode::Refresh,
            "--retries" => {
                options.max_retries = value("--retries")?
                    .parse()
                    .map_err(|_| "invalid retry count".to_owned())?;
            }
            "--lease-secs" => {
                options.worker_lease = Duration::from_secs(
                    value("--lease-secs")?
                        .parse()
                        .map_err(|_| "invalid lease".to_owned())?,
                );
            }
            "--trace-out" => options.trace_out = Some(value("--trace-out")?.into()),
            "--events-out" => options.events_out = Some(value("--events-out")?.into()),
            "--flight-capacity" => {
                options.flight_capacity = value("--flight-capacity")?
                    .parse()
                    .map_err(|_| "invalid flight-recorder capacity".to_owned())?;
            }
            "--checkpoint-dir" => options.checkpoint_dir = Some(value("--checkpoint-dir")?.into()),
            other => return Err(format!("unknown serve option {other:?} (try --help)")),
        }
    }
    Ok(ServeArgs {
        options,
        worker,
        name,
    })
}

fn run_serve_cmd(argv: Vec<String>) -> Result<(), String> {
    let args = parse_serve_args(argv)?;
    if let Some(coordinator) = args.worker {
        let wopts = WorkerOptions {
            coordinator: coordinator.clone(),
            name: args.name.clone(),
            cache_dir: args.options.cache_dir.join("worker"),
            cache: args.options.cache,
            max_retries: args.options.max_retries,
        };
        eprintln!("worker {:?}: connecting to {coordinator}...", args.name);
        let summary = run_worker_with_retry(&wopts, 30, Duration::from_secs(1))
            .map_err(|e| format!("worker: {e}"))?;
        eprintln!(
            "worker {:?}: drained after {} completed, {} cached, {} failed",
            args.name, summary.completed, summary.cached, summary.failed
        );
        return Ok(());
    }

    swiftsim_serve::signal::install_handlers();
    let handle = server::start(args.options).map_err(|e| format!("serve: {e}"))?;
    // A machine-readable line so scripts (and the CI smoke test) can learn
    // the bound address when listening on port 0.
    emit(&format!(
        "{}\n",
        Json::obj(vec![
            ("serving", Json::str(handle.addr().to_string())),
            (
                "version",
                Json::int(swiftsim_serve::protocol::PROTOCOL_VERSION)
            ),
        ])
        .dump()
    ));
    eprintln!(
        "serve: listening on {} (SIGTERM or a shutdown request drains gracefully)",
        handle.addr()
    );
    handle.join();
    Ok(())
}

#[derive(Debug)]
struct SubmitArgs {
    spec_path: Option<String>,
    to: String,
    client: String,
    priority: u64,
    timeout: Duration,
    wait: bool,
    out: Option<String>,
    stats: bool,
    metrics: bool,
    dump_events: bool,
    json: bool,
    drain: bool,
}

fn parse_submit_args(mut argv: Vec<String>) -> Result<SubmitArgs, String> {
    let mut args = SubmitArgs {
        spec_path: None,
        to: "127.0.0.1:7733".to_owned(),
        client: std::env::var("USER").unwrap_or_else(|_| "anonymous".to_owned()),
        priority: 0,
        timeout: Duration::from_secs(3600),
        wait: true,
        out: None,
        stats: false,
        metrics: false,
        dump_events: false,
        json: false,
        drain: false,
    };

    let mut it = argv.drain(..);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--to" => args.to = value("--to")?,
            "--client" => args.client = value("--client")?,
            "--priority" => {
                args.priority = value("--priority")?
                    .parse()
                    .map_err(|_| "invalid priority".to_owned())?;
            }
            "--timeout-secs" => {
                args.timeout = Duration::from_secs(
                    value("--timeout-secs")?
                        .parse()
                        .map_err(|_| "invalid timeout".to_owned())?,
                );
            }
            "--no-wait" => args.wait = false,
            "--out" => args.out = Some(value("--out")?),
            "--stats" => args.stats = true,
            "--metrics" => args.metrics = true,
            "--dump-events" => args.dump_events = true,
            "--json" => args.json = true,
            "--drain" => args.drain = true,
            other if !other.starts_with('-') && args.spec_path.is_none() => {
                args.spec_path = Some(other.to_owned());
            }
            other => return Err(format!("unknown submit option {other:?} (try --help)")),
        }
    }
    Ok(args)
}

fn run_submit_cmd(argv: Vec<String>) -> Result<(), String> {
    let args = parse_submit_args(argv)?;
    let mut client = ServeClient::connect(&args.to)
        .map_err(|e| format!("cannot reach daemon at {}: {e}", args.to))?;

    if args.stats {
        let stats = client.stats().map_err(|e| e.to_string())?;
        emit(&(stats.dump() + "\n"));
        return Ok(());
    }
    if args.metrics {
        let (text, json) = client.metrics().map_err(|e| e.to_string())?;
        if args.json {
            emit(&(json.dump() + "\n"));
        } else {
            emit(&text);
        }
        return Ok(());
    }
    if args.dump_events {
        let reply = client.dump_events().map_err(|e| e.to_string())?;
        let mut jsonl = String::new();
        for ev in reply.get("events").and_then(Json::as_arr).unwrap_or(&[]) {
            jsonl.push_str(&ev.dump());
            jsonl.push('\n');
        }
        emit(&jsonl);
        if let Some(dropped) = reply.get("dropped").and_then(Json::as_u64) {
            if dropped > 0 {
                eprintln!("flight recorder dropped {dropped} older event(s)");
            }
        }
        return Ok(());
    }
    if args.drain {
        client.shutdown().map_err(|e| e.to_string())?;
        eprintln!("daemon at {} is draining", args.to);
        return Ok(());
    }

    let spec_path = args
        .spec_path
        .ok_or("submit needs a spec file (try --help)")?;
    let text =
        std::fs::read_to_string(&spec_path).map_err(|e| format!("cannot read {spec_path}: {e}"))?;
    let (job, tasks) = client
        .submit(&text, &args.client, args.priority)
        .map_err(|e| e.to_string())?;
    eprintln!(
        "submitted job {job} ({tasks} task(s)) to {} as client {:?}",
        args.to, args.client
    );
    if !args.wait {
        emit(&format!(
            "{}\n",
            Json::obj(vec![("job", Json::int(job)), ("tasks", Json::int(tasks))]).dump()
        ));
        return Ok(());
    }

    let report = client
        .wait_result(job, args.timeout)
        .map_err(|e| e.to_string())?;
    let rows = report
        .get("rows")
        .and_then(Json::as_arr)
        .ok_or("daemon result carried no rows")?;
    let mut jsonl = String::new();
    let mut bad = 0usize;
    for row in rows {
        jsonl.push_str(&row.dump());
        jsonl.push('\n');
        if !matches!(
            row.get("status").and_then(Json::as_str),
            Some("ok" | "cached")
        ) {
            bad += 1;
        }
    }
    if let Some(path) = &args.out {
        std::fs::write(path, &jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    emit(&jsonl);
    if let Some(summary) = report.get("summary").and_then(Json::as_str) {
        eprintln!("{summary}");
    }
    if bad > 0 {
        return Err(format!("{bad} job(s) did not finish ok"));
    }
    Ok(())
}

#[derive(Debug)]
struct ValidateArgs {
    options: swiftsim_validate::ValidateOptions,
    json_out: Option<String>,
    write_thresholds: Option<String>,
    slack: f64,
    check: Option<String>,
}

fn parse_validate_args(mut argv: Vec<String>) -> Result<ValidateArgs, String> {
    use swiftsim_validate::{parse_scale, preset_by_label, OracleSource};

    let mut options = swiftsim_validate::ValidateOptions::default();
    let mut json_out = None;
    let mut write_thresholds = None;
    let mut slack = 0.05;
    let mut check = None;

    let mut it = argv.drain(..);
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} needs a value"));
        match arg.as_str() {
            "--help" | "-h" => {
                emit(USAGE);
                std::process::exit(0);
            }
            "--scale" => options.scale = parse_scale(&value("--scale")?)?,
            "--apps" => {
                options.apps = Some(value("--apps")?.split(',').map(str::to_owned).collect());
            }
            "--gpu" => {
                options.gpus = value("--gpu")?
                    .split(',')
                    .map(|name| {
                        presets::by_name(name).ok_or_else(|| format!("unknown GPU preset {name:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--preset" => {
                options.presets = value("--preset")?
                    .split(',')
                    .map(preset_by_label)
                    .collect::<Result<_, _>>()?;
            }
            "--threads" => {
                options.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "invalid thread count".to_owned())?;
            }
            "--top" => {
                options.top_offenders = value("--top")?
                    .parse()
                    .map_err(|_| "invalid offender count".to_owned())?;
            }
            "--json" => json_out = Some(value("--json")?),
            "--write-thresholds" => write_thresholds = Some(value("--write-thresholds")?),
            "--slack" => {
                slack = value("--slack")?
                    .parse()
                    .map_err(|_| "invalid slack".to_owned())?;
            }
            "--check" => check = Some(value("--check")?),
            "--oracle" => {
                let spec = value("--oracle")?;
                let path = spec
                    .strip_prefix("accelsim:")
                    .ok_or_else(|| format!("unknown oracle {spec:?} (expected accelsim:<FILE>)"))?;
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                options.oracle =
                    OracleSource::Imported(swiftsim_validate::parse_accelsim_stats(&text)?);
            }
            "--inject-drift" => {
                options.drift = value("--inject-drift")?
                    .parse()
                    .map_err(|_| "invalid drift factor".to_owned())?;
            }
            other => return Err(format!("unknown validate option {other:?} (try --help)")),
        }
    }
    Ok(ValidateArgs {
        options,
        json_out,
        write_thresholds,
        slack,
        check,
    })
}

fn run_validate_cmd(argv: Vec<String>) -> Result<(), String> {
    let mut args = parse_validate_args(argv)?;

    // Gate mode: the thresholds file records the exact suite it bounds, so
    // CI needs no other configuration flags.
    let thresholds = match &args.check {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let t = swiftsim_validate::Thresholds::from_json(&Json::parse(&text)?)?;
            let recorded = t.to_options()?;
            args.options.scale = recorded.scale;
            args.options.apps = recorded.apps;
            args.options.gpus = recorded.gpus;
            args.options.presets = recorded.presets;
            Some(t)
        }
        None => None,
    };

    let report = swiftsim_validate::run_validation(&args.options)?;
    emit(&report.render());

    if let Some(path) = &args.json_out {
        let text = report.to_json().dump() + "\n";
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    if let Some(path) = &args.write_thresholds {
        let bounds = swiftsim_validate::Thresholds::from_report(&report, args.slack);
        let text = bounds.to_json().dump() + "\n";
        std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
        emit(&format!(
            "wrote {} bounds (MAPE + {:.0}% slack) to {path}\n",
            bounds.max_mape.len(),
            100.0 * args.slack
        ));
    }
    if let Some(thresholds) = thresholds {
        let violations = thresholds.check(&report);
        if !violations.is_empty() {
            for v in &violations {
                eprintln!("accuracy gate: {v}");
            }
            return Err(format!(
                "accuracy gate failed: {} violation(s)",
                violations.len()
            ));
        }
        emit(&format!(
            "accuracy gate passed: {} bounds held\n",
            thresholds.max_mape.len()
        ));
    }
    Ok(())
}

fn run(mut argv: Vec<String>) -> Result<(), String> {
    if argv.first().map(String::as_str) == Some("campaign") {
        return run_campaign_cmd(argv.split_off(1));
    }
    if argv.first().map(String::as_str) == Some("serve") {
        return run_serve_cmd(argv.split_off(1));
    }
    if argv.first().map(String::as_str) == Some("submit") {
        return run_submit_cmd(argv.split_off(1));
    }
    if argv.first().map(String::as_str) == Some("validate") {
        return run_validate_cmd(argv.split_off(1));
    }
    let Some(args) = parse_args(argv)? else {
        return Ok(());
    };

    // Trace files stream: the kernel index/metadata is read now, kernel
    // payloads decode lazily (and one kernel ahead) during the run. Binary
    // traces are detected by their magic, not the extension.
    let source: Box<dyn TraceSource> = match (&args.trace_file, &args.workload) {
        (Some(path), _) => open_trace(path).map_err(|e| e.to_string())?,
        (None, Some(name)) => Box::new(find_workload(name)?.generate(args.scale)),
        (None, None) => return Err("need --workload or --trace (try --help)".to_owned()),
    };

    let mut fidelity = FidelityConfig::for_preset(args.preset);
    if let Some(text) = &args.fidelity {
        apply_fidelity_text(&mut fidelity, text)?;
    }
    let mut options = RunOptions::default()
        .with_fidelity(fidelity)
        .with_threads(args.threads)
        .with_profile(args.profile);
    if let Some(path) = &args.checkpoint_out {
        options = options.with_checkpoint_out(path);
    }
    if let Some(path) = &args.resume {
        options = options.with_resume(path);
    }
    if let Some(kernels) = args.halt_after {
        options = options.with_halt_after(kernels);
    }
    let sim = GpuSimulator::try_new(args.gpu.clone(), &options).map_err(|e| e.to_string())?;

    eprintln!(
        "simulating {:?} ({} instructions) on {} with {} ({})...",
        source.name(),
        source.total_insts(),
        args.gpu.name,
        args.preset.label(),
        sim.description(),
    );
    let result = sim.run(source.as_ref()).map_err(|e| e.to_string())?;

    if let Some(path) = &args.checkpoint_out {
        eprintln!("checkpoint snapshot at {path} (resume with --resume {path})");
    }
    if let (Some(path), Some(report)) = (&args.trace_out, &result.profile) {
        let trace = report.to_chrome_trace().dump();
        std::fs::write(path, trace).map_err(|e| format!("cannot write {path}: {e}"))?;
        eprintln!("profile trace written to {path} (open in ui.perfetto.dev or chrome://tracing)");
    }

    if args.json {
        // The same schema campaign JSONL rows embed under "result". The
        // attribution table goes to stderr so stdout stays machine-readable.
        if let Some(report) = &result.profile {
            eprintln!("{}", report.attribution_table());
        }
        emit(&(result.to_json().dump() + "\n"));
        return Ok(());
    }

    let mut out = String::new();
    out.push_str(&format!("app        = {}\n", result.app));
    out.push_str(&format!("simulator  = {}\n", result.simulator));
    out.push_str(&format!("cycles     = {}\n", result.cycles));
    out.push_str(&format!("insts      = {}\n", result.instructions()));
    out.push_str(&format!("ipc        = {:.3}\n", result.ipc()));
    out.push_str(&format!(
        "wall_time  = {:.3}s\n",
        result.wall_time.as_secs_f64()
    ));
    out.push_str(&format!(
        "sim_rate   = {:.0} cycles/s\n\n",
        result.sim_rate()
    ));
    if let Some(c) = &result.confidence {
        out.push_str(&format!(
            "sampling   = {} cluster(s), {} detailed + {} replayed kernel(s), \
             app error bound {:.1}%\n",
            c.clusters,
            c.sampled_kernels,
            c.replayed_kernels,
            c.app_error_bound * 100.0
        ));
    }
    for k in &result.kernels {
        out.push_str(&format!(
            "kernel {:<24} cycles={:<10} insts={:<10} ipc={:.3}\n",
            k.name,
            k.cycles,
            k.instructions,
            k.ipc()
        ));
    }
    out.push('\n');
    out.push_str(&result.metrics.to_report());
    if let Some(report) = &result.profile {
        out.push_str(&format!(
            "\nself-profile (wall-time attribution per simulator module)\n{}",
            report.attribution_table()
        ));
    }
    emit(&out);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let args = parse_args(vec![]).unwrap().unwrap();
        assert_eq!(args.preset, SimulatorPreset::SwiftBasic);
        assert_eq!(args.gpu.name, "RTX 2080 Ti");
        assert!(args.workload.is_none());
        assert!(args.trace_file.is_none());
        assert_eq!(args.threads, 1);
    }

    #[test]
    fn full_flag_set_parses() {
        let argv: Vec<String> = [
            "--preset",
            "swift-memory",
            "--gpu",
            "rtx3090",
            "--workload",
            "bfs",
            "--scale",
            "tiny",
            "--threads",
            "4",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let args = parse_args(argv).unwrap().unwrap();
        assert_eq!(args.preset, SimulatorPreset::SwiftMemory);
        assert_eq!(args.gpu.num_sms, 82);
        assert_eq!(args.workload.as_deref(), Some("bfs"));
        assert_eq!(args.scale, Scale::Tiny);
        assert_eq!(args.threads, 4);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = parse_args(vec!["--frobnicate".into()]).unwrap_err();
        assert!(err.contains("--frobnicate"), "{err}");
    }

    #[test]
    fn missing_value_is_rejected() {
        assert!(parse_args(vec!["--preset".into()]).is_err());
        assert!(parse_args(vec!["--gpu".into(), "gtx9000".into()]).is_err());
        assert!(parse_args(vec!["--scale".into(), "huge".into()]).is_err());
    }

    #[test]
    fn run_requires_a_workload_or_trace() {
        assert!(run(vec![]).is_err());
    }

    #[test]
    fn find_workload_matches_suite() {
        assert!(find_workload("bfs").is_ok());
        assert!(find_workload("doom").is_err());
    }

    #[test]
    fn json_flag_parses() {
        let args = parse_args(vec!["--json".into()]).unwrap().unwrap();
        assert!(args.json);
        assert!(!parse_args(vec![]).unwrap().unwrap().json);
    }

    #[test]
    fn fidelity_flag_parses_and_overrides_the_preset() {
        let args = parse_args(vec![
            "--preset".into(),
            "detailed".into(),
            "--fidelity".into(),
            "-sim_alu_model analytical -sim_skip_policy dense".into(),
        ])
        .unwrap()
        .unwrap();
        let mut fidelity = FidelityConfig::for_preset(args.preset);
        apply_fidelity_text(&mut fidelity, args.fidelity.as_deref().unwrap()).unwrap();
        assert_eq!(
            fidelity.describe(),
            "analytical_alu+cycle_accurate_memory+detailed_frontend+dense"
        );

        // Bad keys, bad values, and missing values are all surfaced.
        let mut f = FidelityConfig::default();
        assert!(apply_fidelity_text(&mut f, "-sim_warp_model fancy").is_err());
        assert!(apply_fidelity_text(&mut f, "-sim_alu_model quantum").is_err());
        assert!(apply_fidelity_text(&mut f, "-sim_alu_model").is_err());
        assert!(apply_fidelity_text(&mut f, "--threads 4").is_err());
    }

    #[test]
    fn unknown_sim_key_error_lists_every_valid_key() {
        // Pin the discoverability contract: a typo'd -sim_* key names all
        // six valid keys, both through the core parser (unknown -sim_*)
        // and the CLI wrapper (non-fidelity token).
        let mut f = FidelityConfig::default();
        for bad in ["-sim_bogus x", "--threads 4"] {
            let err = apply_fidelity_text(&mut f, bad).unwrap_err();
            for key in [
                "-sim_alu_model",
                "-sim_mem_model",
                "-sim_frontend_model",
                "-sim_skip_policy",
                "-sim_sync_quantum",
                "-sim_sampling",
            ] {
                assert!(err.contains(key), "{bad:?} error must list {key}: {err}");
            }
        }
    }

    #[test]
    fn bare_sim_pairs_merge_with_the_fidelity_flag() {
        let args = parse_args(vec![
            "-sim_sampling".into(),
            "cluster:2".into(),
            "--fidelity".into(),
            "-sim_alu_model analytical".into(),
            "-sim_skip_policy".into(),
            "dense".into(),
        ])
        .unwrap()
        .unwrap();
        assert_eq!(
            args.fidelity.as_deref(),
            Some("-sim_sampling cluster:2 -sim_alu_model analytical -sim_skip_policy dense")
        );
        let mut f = FidelityConfig::for_preset(SimulatorPreset::Detailed);
        apply_fidelity_text(&mut f, args.fidelity.as_deref().unwrap()).unwrap();
        assert_eq!(
            f.sampling,
            swiftsim_core::SamplingPolicy::KernelCluster { reps: 2 }
        );
        assert!(parse_args(vec!["-sim_sampling".into()]).is_err());
    }

    #[test]
    fn checkpoint_flags_parse() {
        let args = parse_args(vec![
            "--checkpoint-out".into(),
            "snap.sstbckpt".into(),
            "--resume".into(),
            "old.sstbckpt".into(),
            "--halt-after".into(),
            "3".into(),
        ])
        .unwrap()
        .unwrap();
        assert_eq!(args.checkpoint_out.as_deref(), Some("snap.sstbckpt"));
        assert_eq!(args.resume.as_deref(), Some("old.sstbckpt"));
        assert_eq!(args.halt_after, Some(3));

        let defaults = parse_args(vec![]).unwrap().unwrap();
        assert!(defaults.checkpoint_out.is_none());
        assert!(defaults.resume.is_none());
        assert!(defaults.halt_after.is_none());
        assert!(parse_args(vec!["--halt-after".into(), "some".into()]).is_err());
        assert!(parse_args(vec!["--checkpoint-out".into()]).is_err());
    }

    #[test]
    fn campaign_fidelity_overrides_replace_spec_axes() {
        let args = parse_campaign_args(vec![
            "sweep.campaign".into(),
            "--fidelity".into(),
            "-sim_alu_model analytical".into(),
            "-sim_sampling".into(),
            "cluster:2".into(),
            "--checkpoint-dir".into(),
            "/tmp/ckpts".into(),
        ])
        .unwrap();
        assert_eq!(
            args.fidelity.as_deref(),
            Some("-sim_alu_model analytical -sim_sampling cluster:2")
        );
        assert_eq!(
            args.options.checkpoint_dir,
            Some(std::path::PathBuf::from("/tmp/ckpts"))
        );

        let mut spec =
            CampaignSpec::parse("name = t\nworkload = bfs\npreset = detailed\n").unwrap();
        apply_fidelity_axes(&mut spec, args.fidelity.as_deref().unwrap()).unwrap();
        assert_eq!(spec.alu_models.len(), 1);
        assert!(spec.alu_models[0].is_some());
        assert_eq!(
            spec.samplings,
            vec![Some(swiftsim_core::SamplingPolicy::KernelCluster {
                reps: 2
            })]
        );

        // Comma-separated values become a sweep axis; `default` keeps the
        // preset's own policy for that cell.
        apply_fidelity_axes(&mut spec, "-sim_sampling default,off,cluster:4").unwrap();
        assert_eq!(
            spec.samplings,
            vec![
                None,
                Some(swiftsim_core::SamplingPolicy::Off),
                Some(swiftsim_core::SamplingPolicy::KernelCluster { reps: 4 })
            ]
        );
        let err = apply_fidelity_axes(&mut spec, "-sim_sampling ,").unwrap_err();
        assert!(err.contains("empty value list"), "{err}");

        // The engine quantum has no campaign axis; unknown keys list the
        // campaign-valid set.
        assert!(apply_fidelity_axes(&mut spec, "-sim_sync_quantum 64").is_err());
        let err = apply_fidelity_axes(&mut spec, "-sim_bogus x").unwrap_err();
        assert!(err.contains("-sim_sampling"), "{err}");
        assert!(apply_fidelity_axes(&mut spec, "-sim_alu_model").is_err());
        assert!(apply_fidelity_axes(&mut spec, "-sim_alu_model quantum").is_err());
    }

    #[test]
    fn campaign_args_parse() {
        let argv: Vec<String> = [
            "sweep.campaign",
            "--jobs",
            "8",
            "--refresh",
            "--cache-dir",
            "/tmp/cc",
            "--out",
            "rows.jsonl",
            "--json",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let args = parse_campaign_args(argv).unwrap();
        assert_eq!(args.spec_path, "sweep.campaign");
        assert_eq!(args.options.workers, 8);
        assert_eq!(args.options.cache, swiftsim_campaign::CacheMode::Refresh);
        assert_eq!(args.options.cache_dir, std::path::PathBuf::from("/tmp/cc"));
        assert_eq!(args.out.as_deref(), Some("rows.jsonl"));
        assert!(args.json);
    }

    #[test]
    fn serve_args_parse() {
        let argv: Vec<String> = [
            "--listen",
            "127.0.0.1:0",
            "--local-slots",
            "2",
            "--no-cache",
            "--lease-secs",
            "60",
            "--trace-out",
            "merged.json",
            "--events-out",
            "flight.jsonl",
            "--flight-capacity",
            "128",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let args = parse_serve_args(argv).unwrap();
        assert_eq!(args.options.listen, "127.0.0.1:0");
        assert_eq!(args.options.local_slots, Some(2));
        assert_eq!(args.options.cache, swiftsim_campaign::CacheMode::Off);
        assert_eq!(args.options.worker_lease, Duration::from_secs(60));
        assert_eq!(
            args.options.trace_out,
            Some(std::path::PathBuf::from("merged.json"))
        );
        assert_eq!(
            args.options.events_out,
            Some(std::path::PathBuf::from("flight.jsonl"))
        );
        assert_eq!(args.options.flight_capacity, 128);
        assert!(args.worker.is_none());

        let ckpt = parse_serve_args(vec!["--checkpoint-dir".into(), "/tmp/sd".into()]).unwrap();
        assert_eq!(
            ckpt.options.checkpoint_dir,
            Some(std::path::PathBuf::from("/tmp/sd"))
        );

        let defaults = parse_serve_args(vec![]).unwrap();
        assert!(defaults.options.checkpoint_dir.is_none());
        assert!(defaults.options.trace_out.is_none());
        assert!(defaults.options.events_out.is_none());
        assert_eq!(defaults.options.flight_capacity, 4096);
        assert!(parse_serve_args(vec!["--flight-capacity".into(), "lots".into()]).is_err());

        let worker = parse_serve_args(vec![
            "--worker".into(),
            "127.0.0.1:7733".into(),
            "--name".into(),
            "w1".into(),
        ])
        .unwrap();
        assert_eq!(worker.worker.as_deref(), Some("127.0.0.1:7733"));
        assert_eq!(worker.name, "w1");

        assert!(parse_serve_args(vec!["--frob".into()]).is_err());
        assert!(parse_serve_args(vec!["--local-slots".into(), "many".into()]).is_err());
    }

    #[test]
    fn submit_args_parse() {
        let argv: Vec<String> = [
            "sweep.campaign",
            "--to",
            "127.0.0.1:9",
            "--client",
            "ci",
            "--priority",
            "5",
            "--timeout-secs",
            "10",
            "--no-wait",
            "--out",
            "rows.jsonl",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let args = parse_submit_args(argv).unwrap();
        assert_eq!(args.spec_path.as_deref(), Some("sweep.campaign"));
        assert_eq!(args.to, "127.0.0.1:9");
        assert_eq!(args.client, "ci");
        assert_eq!(args.priority, 5);
        assert_eq!(args.timeout, Duration::from_secs(10));
        assert!(!args.wait);
        assert_eq!(args.out.as_deref(), Some("rows.jsonl"));

        let stats = parse_submit_args(vec!["--stats".into()]).unwrap();
        assert!(stats.stats && stats.spec_path.is_none());

        let metrics = parse_submit_args(vec!["--metrics".into(), "--json".into()]).unwrap();
        assert!(metrics.metrics && metrics.json && metrics.spec_path.is_none());
        assert!(!parse_submit_args(vec!["--stats".into()]).unwrap().metrics);

        let dump = parse_submit_args(vec!["--dump-events".into()]).unwrap();
        assert!(dump.dump_events && !dump.metrics);

        assert!(parse_submit_args(vec!["--priority".into()]).is_err());
    }

    #[test]
    fn campaign_args_reject_bad_input() {
        assert!(parse_campaign_args(vec![]).is_err(), "spec is required");
        assert!(parse_campaign_args(vec!["a".into(), "--frob".into()]).is_err());
        assert!(parse_campaign_args(vec!["a".into(), "--jobs".into()]).is_err());
        let no_cache = parse_campaign_args(vec!["a".into(), "--no-cache".into()]).unwrap();
        assert_eq!(no_cache.options.cache, swiftsim_campaign::CacheMode::Off);
    }
}
