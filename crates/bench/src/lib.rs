//! Experiment harness shared by the table/figure regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §2 for the index). This library holds the common sweep
//! logic: run a workload through the three simulator presets, compare
//! against the silicon oracle, and aggregate the error/speedup statistics
//! the paper reports.
//!
//! Environment knobs (all optional):
//!
//! * `SWIFTSIM_SCALE` — `tiny` / `small` / `paper` (default `small`;
//!   the committed EXPERIMENTS.md numbers use `paper`).
//! * `SWIFTSIM_APPS` — comma-separated subset of workload names.
//! * `SWIFTSIM_THREADS` — worker threads for the parallel runs
//!   (default `0` = auto: all cores, capped at the GPU's SM count by the
//!   simulator builder).

use std::time::Duration;
use swiftsim_config::GpuConfig;
use swiftsim_core::{run, RunOptions, SimulatorPreset};
use swiftsim_metrics::{geomean, mean};
use swiftsim_workloads::{silicon, Scale, Workload};

/// Scale/threads/app-subset configuration shared by all binaries.
#[derive(Debug, Clone)]
pub struct Knobs {
    /// Workload scale.
    pub scale: Scale,
    /// Threads for parallel hybrid runs.
    pub threads: usize,
    /// Workload subset (None = full suite).
    pub apps: Option<Vec<String>>,
}

impl Knobs {
    /// Read the environment knobs.
    pub fn from_env() -> Knobs {
        let scale = match std::env::var("SWIFTSIM_SCALE").as_deref() {
            Ok("tiny") => Scale::Tiny,
            Ok("paper") => Scale::Paper,
            _ => Scale::Small,
        };
        let threads = std::env::var("SWIFTSIM_THREADS")
            .ok()
            .and_then(|t| t.parse().ok())
            .unwrap_or(0);
        let apps = std::env::var("SWIFTSIM_APPS").ok().map(|s| {
            s.split(',')
                .map(|a| a.trim().to_owned())
                .filter(|a| !a.is_empty())
                .collect()
        });
        Knobs {
            scale,
            threads,
            apps,
        }
    }

    /// The workloads this run covers.
    pub fn workloads(&self) -> Vec<Workload> {
        let all = swiftsim_workloads::suite();
        match &self.apps {
            Some(filter) => all
                .into_iter()
                .filter(|w| filter.iter().any(|f| f == w.name))
                .collect(),
            None => all,
        }
    }

    /// Human-readable description for report headers.
    pub fn describe(&self) -> String {
        format!(
            "scale={:?} threads={} apps={}",
            self.scale,
            self.threads,
            self.apps
                .as_ref()
                .map_or_else(|| "all".to_owned(), |a| a.join(","))
        )
    }
}

/// One preset's measurement on one application.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Predicted execution cycles.
    pub cycles: u64,
    /// Host wall-clock time of the simulation.
    pub wall: Duration,
}

/// All measurements for one application on one GPU.
#[derive(Debug, Clone)]
pub struct AppResult {
    /// Application name.
    pub app: &'static str,
    /// Detailed baseline (the Accel-Sim stand-in), single-threaded.
    pub detailed: Measurement,
    /// Swift-Sim-Basic, single-threaded.
    pub basic_1t: Measurement,
    /// Swift-Sim-Memory, single-threaded.
    pub memory_1t: Measurement,
    /// Swift-Sim-Basic, parallel.
    pub basic_mt: Measurement,
    /// Swift-Sim-Memory, parallel.
    pub memory_mt: Measurement,
    /// The silicon oracle's "measured hardware" cycles.
    pub hardware: u64,
}

impl AppResult {
    /// Relative prediction error of a measurement against the oracle.
    pub fn error(&self, m: Measurement) -> f64 {
        swiftsim_metrics::rel_error(m.cycles as f64, self.hardware as f64)
    }

    /// Wall-clock speedup of `m` over the detailed baseline.
    pub fn speedup(&self, m: Measurement) -> f64 {
        self.detailed.wall.as_secs_f64() / m.wall.as_secs_f64().max(1e-9)
    }
}

fn run_one(
    gpu: &GpuConfig,
    preset: SimulatorPreset,
    threads: usize,
    app: &swiftsim_trace::ApplicationTrace,
) -> Measurement {
    let options = RunOptions::default()
        .with_preset(preset)
        .with_threads(threads);
    let result = run(app, gpu, &options).expect("benchmark simulation completes");
    Measurement {
        cycles: result.cycles,
        wall: result.wall_time,
    }
}

/// Run the full three-simulator sweep for one workload on one GPU.
pub fn sweep_app(gpu: &GpuConfig, workload: &Workload, knobs: &Knobs) -> AppResult {
    let app = workload.generate(knobs.scale);
    let detailed = run_one(gpu, SimulatorPreset::Detailed, 1, &app);
    let basic_1t = run_one(gpu, SimulatorPreset::SwiftBasic, 1, &app);
    let memory_1t = run_one(gpu, SimulatorPreset::SwiftMemory, 1, &app);
    let (basic_mt, memory_mt) = if knobs.threads != 1 {
        (
            run_one(gpu, SimulatorPreset::SwiftBasic, knobs.threads, &app),
            run_one(gpu, SimulatorPreset::SwiftMemory, knobs.threads, &app),
        )
    } else {
        (basic_1t, memory_1t)
    };
    let hardware = silicon::hardware_cycles(workload.name, &gpu.name, detailed.cycles);
    AppResult {
        app: workload.name,
        detailed,
        basic_1t,
        memory_1t,
        basic_mt,
        memory_mt,
        hardware,
    }
}

/// Accuracy-only sweep (Fig. 6 does not need wall-clock numbers, so the
/// parallel runs are skipped).
pub fn sweep_app_accuracy(gpu: &GpuConfig, workload: &Workload, scale: Scale) -> AppResult {
    let app = workload.generate(scale);
    let detailed = run_one(gpu, SimulatorPreset::Detailed, 1, &app);
    let basic_1t = run_one(gpu, SimulatorPreset::SwiftBasic, 1, &app);
    let memory_1t = run_one(gpu, SimulatorPreset::SwiftMemory, 1, &app);
    let hardware = silicon::hardware_cycles(workload.name, &gpu.name, detailed.cycles);
    AppResult {
        app: workload.name,
        detailed,
        basic_1t,
        memory_1t,
        basic_mt: basic_1t,
        memory_mt: memory_1t,
        hardware,
    }
}

// ---------------------------------------------------------------------------
// Sweep cache
// ---------------------------------------------------------------------------
//
// Detailed-baseline simulations are expensive and four figure binaries need
// the same numbers, so finished sweeps are cached as tab-separated rows
// under `target/swiftsim-sweeps/`. Delete that directory after changing
// simulator code.
//
// Rows are tagged with a version; lookups ignore rows from other versions.
// v2: the event-driven cycle-skipping engine replaced the stat-free idle
// jump — predictions are unchanged, wall-clock columns are not.
const CACHE_TAG: &str = "v2";

fn cache_path(gpu: &GpuConfig, scale: Scale) -> std::path::PathBuf {
    let gpu_slug: String = gpu
        .name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    std::path::PathBuf::from(format!("target/swiftsim-sweeps/{gpu_slug}-{scale:?}.tsv"))
}

fn measurement_to_fields(m: Measurement) -> String {
    format!("{}\t{}", m.cycles, m.wall.as_micros())
}

fn fields_to_measurement(cycles: &str, wall_us: &str) -> Option<Measurement> {
    Some(Measurement {
        cycles: cycles.parse().ok()?,
        wall: Duration::from_micros(wall_us.parse().ok()?),
    })
}

fn cache_lookup(gpu: &GpuConfig, scale: Scale, app: &str, threads: usize) -> Option<AppResult> {
    let text = std::fs::read_to_string(cache_path(gpu, scale)).ok()?;
    let app_static = swiftsim_workloads::suite()
        .into_iter()
        .find(|w| w.name == app)?
        .name;
    for line in text.lines() {
        let f: Vec<&str> = line.split('\t').collect();
        if f.len() == 14 && f[13] == CACHE_TAG && f[0] == app && f[1] == threads.to_string() {
            return Some(AppResult {
                app: app_static,
                detailed: fields_to_measurement(f[2], f[3])?,
                basic_1t: fields_to_measurement(f[4], f[5])?,
                memory_1t: fields_to_measurement(f[6], f[7])?,
                basic_mt: fields_to_measurement(f[8], f[9])?,
                memory_mt: fields_to_measurement(f[10], f[11])?,
                hardware: f[12].parse().ok()?,
            });
        }
    }
    None
}

fn cache_store(gpu: &GpuConfig, scale: Scale, threads: usize, r: &AppResult) {
    let path = cache_path(gpu, scale);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let row = format!(
        "{}\t{}\t{}\t{}\t{}\t{}\t{}\t{}\t{CACHE_TAG}\n",
        r.app,
        threads,
        measurement_to_fields(r.detailed),
        measurement_to_fields(r.basic_1t),
        measurement_to_fields(r.memory_1t),
        measurement_to_fields(r.basic_mt),
        measurement_to_fields(r.memory_mt),
        r.hardware,
    );
    use std::io::Write as _;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = f.write_all(row.as_bytes());
    }
}

/// [`sweep_app`] with a disk cache keyed by (GPU, scale, threads, app).
pub fn sweep_app_cached(gpu: &GpuConfig, workload: &Workload, knobs: &Knobs) -> AppResult {
    if let Some(hit) = cache_lookup(gpu, knobs.scale, workload.name, knobs.threads) {
        return hit;
    }
    let r = sweep_app(gpu, workload, knobs);
    cache_store(gpu, knobs.scale, knobs.threads, &r);
    r
}

/// [`sweep_app_accuracy`] with the same cache (any thread count's row has
/// the single-threaded accuracy fields).
pub fn sweep_app_accuracy_cached(gpu: &GpuConfig, workload: &Workload, scale: Scale) -> AppResult {
    for threads in [1usize, 0] {
        if let Some(hit) = cache_lookup(gpu, scale, workload.name, threads) {
            return hit;
        }
    }
    // Fall back to any cached thread count: the 1-thread fields match.
    if let Ok(text) = std::fs::read_to_string(cache_path(gpu, scale)) {
        for line in text.lines() {
            let f: Vec<&str> = line.split('\t').collect();
            if f.len() == 14 && f[13] == CACHE_TAG && f[0] == workload.name {
                if let Ok(threads) = f[1].parse::<usize>() {
                    if let Some(hit) = cache_lookup(gpu, scale, workload.name, threads) {
                        return hit;
                    }
                }
            }
        }
    }
    let r = sweep_app_accuracy(gpu, workload, scale);
    cache_store(gpu, scale, 0, &r);
    r
}

/// Mean of a per-app statistic.
pub fn mean_of(results: &[AppResult], f: impl Fn(&AppResult) -> f64) -> f64 {
    mean(&results.iter().map(f).collect::<Vec<_>>())
}

/// Geometric mean of a per-app statistic.
pub fn geomean_of(results: &[AppResult], f: impl Fn(&AppResult) -> f64) -> f64 {
    geomean(&results.iter().map(f).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_config::presets;

    fn tiny_knobs() -> Knobs {
        Knobs {
            scale: Scale::Tiny,
            threads: 1,
            apps: Some(vec!["nw".to_owned()]),
        }
    }

    #[test]
    fn sweep_produces_consistent_result() {
        let knobs = tiny_knobs();
        let mut gpu = presets::rtx2080ti();
        gpu.num_sms = 4;
        gpu.memory.partitions = 4;
        let w = &knobs.workloads()[0];
        let r = sweep_app(&gpu, w, &knobs);
        assert_eq!(r.app, "nw");
        assert!(r.detailed.cycles > 0);
        assert!(r.hardware > 0);
        assert!(r.error(r.basic_1t) >= 0.0);
        assert!(r.speedup(r.memory_1t) > 0.0);
    }

    #[test]
    fn knobs_filter_workloads() {
        let knobs = tiny_knobs();
        let ws = knobs.workloads();
        assert_eq!(ws.len(), 1);
        assert_eq!(ws[0].name, "nw");
        assert!(knobs.describe().contains("nw"));
    }

    #[test]
    fn aggregates_work() {
        let m = Measurement {
            cycles: 100,
            wall: Duration::from_millis(10),
        };
        let r = AppResult {
            app: "x",
            detailed: Measurement {
                cycles: 100,
                wall: Duration::from_millis(100),
            },
            basic_1t: m,
            memory_1t: m,
            basic_mt: m,
            memory_mt: m,
            hardware: 80,
        };
        let rs = vec![r];
        assert!((mean_of(&rs, |r| r.error(r.basic_1t)) - 0.25).abs() < 1e-12);
        assert!((geomean_of(&rs, |r| r.speedup(r.basic_1t)) - 10.0).abs() < 1e-9);
    }
}
