//! Core-speed benchmark: dense per-cycle ticking vs the event-driven
//! cycle-skipping engine, across the Fig. 4/5 workload suite and all three
//! presets. Each (workload, preset, clock) cell runs in its own child
//! process so the wall-clock measurements never share a warmed-up
//! allocator or page cache. The driver asserts that both clocks predict
//! bit-identical cycles and instruction counts (the differential suite in
//! `crates/core/tests/event_engine_equiv.rs` is the fine-grained gate on
//! the full statistics) and records the comparison in
//! `BENCH_core_speed.json`.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin core_speed
//! SWIFTSIM_SCALE=tiny SWIFTSIM_APPS=nw,bfs \
//!   cargo run --release -p swiftsim-bench --bin core_speed
//! ```

use std::time::Instant;
use swiftsim_bench::Knobs;
use swiftsim_core::{FidelityConfig, GpuSimulator, RunOptions, SimulatorPreset, SkipPolicy};
use swiftsim_metrics::geomean;
use swiftsim_trace::ApplicationTrace;

const MODE_ENV: &str = "SWIFTSIM_CORE_SPEED_MODE";
const TRACE_ENV: &str = "SWIFTSIM_CORE_SPEED_TRACE";
const PRESET_ENV: &str = "SWIFTSIM_CORE_SPEED_PRESET";

const PRESETS: [(SimulatorPreset, &str); 3] = [
    (SimulatorPreset::Detailed, "detailed"),
    (SimulatorPreset::SwiftBasic, "swift_basic"),
    (SimulatorPreset::SwiftMemory, "swift_memory"),
];

fn small_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = swiftsim_config::presets::rtx2080ti();
    cfg.num_sms = 8;
    cfg.memory.partitions = 4;
    cfg
}

fn preset_from_token(token: &str) -> SimulatorPreset {
    PRESETS
        .iter()
        .find(|(_, t)| *t == token)
        .map(|(p, _)| *p)
        .unwrap_or_else(|| panic!("unknown preset token {token:?}"))
}

/// Child process: load the trace eagerly, run it once under the requested
/// clock, report measurements as `key=value` stdout lines. The trace is
/// decoded before the clock starts so only the simulation core is timed.
fn run_child(mode: &str, preset: &str, path: &str) {
    let mut fidelity = FidelityConfig::for_preset(preset_from_token(preset));
    fidelity.skip_policy = match mode {
        "dense" => SkipPolicy::Dense,
        "event" => SkipPolicy::EventDriven,
        other => panic!("unknown clock mode {other:?}"),
    };
    let sim = GpuSimulator::try_new(small_gpu(), &RunOptions::default().with_fidelity(fidelity))
        .expect("valid config");
    let app = ApplicationTrace::read_binary_file(path).expect("read trace");

    let t0 = Instant::now();
    let result = sim.run(&app).expect("benchmark run");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("cycles={}", result.cycles);
    println!("insts={}", result.instructions());
    println!("wall_ms={wall_ms:.3}");
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    cycles: u64,
    insts: u64,
    wall_ms: f64,
}

/// Spawn this binary again for one (clock, preset) cell and parse its report.
fn measure(mode: &str, preset: &str, path: &std::path::Path) -> Measurement {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .env(MODE_ENV, mode)
        .env(PRESET_ENV, preset)
        .env(TRACE_ENV, path)
        .output()
        .expect("spawn core-speed child");
    assert!(
        out.status.success(),
        "{mode}/{preset} child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| -> f64 {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("{mode}/{preset} child did not report {key}: {stdout}"))
            .parse()
            .expect("numeric field")
    };
    Measurement {
        cycles: field("cycles") as u64,
        insts: field("insts") as u64,
        wall_ms: field("wall_ms"),
    }
}

/// One finished (workload, preset) comparison.
struct Cell {
    app: &'static str,
    preset: &'static str,
    cycles: u64,
    dense_ms: f64,
    event_ms: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.dense_ms / self.event_ms.max(1e-6)
    }
}

fn main() {
    // Child mode: one measured run, then exit.
    if let Ok(mode) = std::env::var(MODE_ENV) {
        let preset = std::env::var(PRESET_ENV).expect("preset env");
        let path = std::env::var(TRACE_ENV).expect("trace path env");
        run_child(&mode, &preset, &path);
        return;
    }

    let knobs = Knobs::from_env();
    let workloads = knobs.workloads();
    assert!(!workloads.is_empty(), "no workloads selected");
    eprintln!(
        "core-speed sweep: dense vs event-driven clock [{}]",
        knobs.describe()
    );

    let dir = std::env::temp_dir().join(format!("swiftsim-core-speed-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let mut cells: Vec<Cell> = Vec::new();
    for w in &workloads {
        let app = w.generate(knobs.scale);
        let path = dir.join(format!("{}.sstraceb", w.name));
        app.write_binary_file(&path).expect("write trace");
        drop(app); // the children load it themselves

        for (_, token) in PRESETS {
            let dense = measure("dense", token, &path);
            let event = measure("event", token, &path);
            assert_eq!(
                dense.cycles, event.cycles,
                "{}/{token}: the two clocks must predict identical cycles",
                w.name
            );
            assert_eq!(
                dense.insts, event.insts,
                "{}/{token}: the two clocks must retire identical instruction counts",
                w.name
            );
            eprintln!(
                "  {:<12} {:<12} {:>12} cycles  dense {:>9.1} ms  event {:>9.1} ms  {:>6.2}x",
                w.name,
                token,
                dense.cycles,
                dense.wall_ms,
                event.wall_ms,
                dense.wall_ms / event.wall_ms.max(1e-6),
            );
            cells.push(Cell {
                app: w.name,
                preset: token,
                cycles: dense.cycles,
                dense_ms: dense.wall_ms,
                event_ms: event.wall_ms,
            });
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let geo: Vec<(&str, f64)> = PRESETS
        .iter()
        .map(|(_, token)| {
            let speedups: Vec<f64> = cells
                .iter()
                .filter(|c| c.preset == *token)
                .map(Cell::speedup)
                .collect();
            (*token, geomean(&speedups))
        })
        .collect();

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"core_speed\",\n");
    json.push_str(&format!("  \"scale\": \"{:?}\",\n", knobs.scale));
    json.push_str(&format!("  \"apps\": {},\n", workloads.len()));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"app\": \"{}\", \"preset\": \"{}\", \"cycles\": {}, \
             \"dense_wall_ms\": {:.3}, \"event_wall_ms\": {:.3}, \"speedup\": {:.3} }}{}\n",
            c.app,
            c.preset,
            c.cycles,
            c.dense_ms,
            c.event_ms,
            c.speedup(),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"geomean_speedup\": {\n");
    for (i, (token, g)) in geo.iter().enumerate() {
        json.push_str(&format!(
            "    \"{token}\": {g:.3}{}\n",
            if i + 1 == geo.len() { "" } else { "," }
        ));
    }
    json.push_str("  }\n}\n");

    let out_path =
        std::env::var("SWIFTSIM_CORE_SPEED_OUT").unwrap_or_else(|_| "BENCH_core_speed.json".into());
    std::fs::write(&out_path, &json).expect("write bench json");

    println!("{json}");
    for (token, g) in &geo {
        println!("{token}: event-driven clock is {g:.2}x dense ({out_path})");
    }
    let detailed_geo = geo
        .iter()
        .find(|(t, _)| *t == "detailed")
        .map(|(_, g)| *g)
        .unwrap_or(0.0);
    if detailed_geo < 1.5 {
        eprintln!(
            "WARNING: detailed-preset geomean speedup {detailed_geo:.2}x below the 1.5x target"
        );
    }
}
