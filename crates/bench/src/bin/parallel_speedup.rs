//! Parallel-scaling benchmark: the two-phase deterministic engine at 1, 4,
//! and 8 threads over the Fig. 4/5 workload suite. Each (workload, threads)
//! cell runs in its own child process so wall-clock measurements never
//! share a warmed-up allocator, and the driver asserts that every thread
//! count predicts bit-identical cycles and instruction counts — the
//! deterministic mode's headline property (the fine-grained gate is
//! `crates/core/tests/event_engine_equiv.rs`). Results land in
//! `BENCH_parallel_speedup.json` together with the host's core count:
//! scaling numbers from a box with fewer cores than shards measure
//! protocol overhead, not parallelism, and the report says so rather than
//! pretending otherwise.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin parallel_speedup
//! SWIFTSIM_SCALE=tiny SWIFTSIM_APPS=nw,bfs SWIFTSIM_PARALLEL_THREADS=1,4 \
//!   cargo run --release -p swiftsim-bench --bin parallel_speedup
//! ```

use std::time::Instant;
use swiftsim_bench::Knobs;
use swiftsim_core::{FidelityConfig, GpuSimulator, RunOptions, SimulatorPreset};
use swiftsim_metrics::geomean;
use swiftsim_trace::ApplicationTrace;

const THREADS_CHILD_ENV: &str = "SWIFTSIM_PARALLEL_SPEEDUP_THREADS";
const TRACE_ENV: &str = "SWIFTSIM_PARALLEL_SPEEDUP_TRACE";
const PRESET_ENV: &str = "SWIFTSIM_PARALLEL_SPEEDUP_PRESET";
/// Driver-level knob: comma-separated thread counts to sweep.
const THREADS_AXIS_ENV: &str = "SWIFTSIM_PARALLEL_THREADS";

const PRESETS: [(SimulatorPreset, &str); 3] = [
    (SimulatorPreset::Detailed, "detailed"),
    (SimulatorPreset::SwiftBasic, "swift_basic"),
    (SimulatorPreset::SwiftMemory, "swift_memory"),
];

/// Eight SMs so an 8-thread sweep shards one SM per worker.
fn bench_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = swiftsim_config::presets::rtx2080ti();
    cfg.num_sms = 8;
    cfg.memory.partitions = 4;
    cfg
}

fn preset_from_token(token: &str) -> SimulatorPreset {
    PRESETS
        .iter()
        .find(|(_, t)| *t == token)
        .map(|(p, _)| *p)
        .unwrap_or_else(|| panic!("unknown preset token {token:?}"))
}

/// Child process: decode the trace, run once at the requested thread
/// count, report `key=value` lines. Decoding happens before the clock
/// starts so only the engine is timed.
fn run_child(threads: usize, preset: &str, path: &str) {
    let fidelity = FidelityConfig::for_preset(preset_from_token(preset));
    let sim = GpuSimulator::try_new(
        bench_gpu(),
        &RunOptions::default()
            .with_fidelity(fidelity)
            .with_threads(threads),
    )
    .expect("valid config");
    let app = ApplicationTrace::read_binary_file(path).expect("read trace");

    let t0 = Instant::now();
    let result = sim.run(&app).expect("benchmark run");
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("cycles={}", result.cycles);
    println!("insts={}", result.instructions());
    println!("wall_ms={wall_ms:.3}");
}

#[derive(Debug, Clone, Copy)]
struct Measurement {
    cycles: u64,
    insts: u64,
    wall_ms: f64,
}

/// Spawn this binary again for one (threads, workload) cell.
fn measure(threads: usize, preset: &str, path: &std::path::Path) -> Measurement {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .env(THREADS_CHILD_ENV, threads.to_string())
        .env(PRESET_ENV, preset)
        .env(TRACE_ENV, path)
        .output()
        .expect("spawn parallel-speedup child");
    assert!(
        out.status.success(),
        "{threads}-thread/{preset} child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| -> f64 {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("{threads}-thread child did not report {key}: {stdout}"))
            .parse()
            .expect("numeric field")
    };
    Measurement {
        cycles: field("cycles") as u64,
        insts: field("insts") as u64,
        wall_ms: field("wall_ms"),
    }
}

/// One (workload, threads) cell, with the 1-thread wall time it is
/// normalized against.
struct Cell {
    app: &'static str,
    threads: usize,
    cycles: u64,
    wall_ms: f64,
    base_ms: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.base_ms / self.wall_ms.max(1e-6)
    }
}

fn thread_axis() -> Vec<usize> {
    let spec = std::env::var(THREADS_AXIS_ENV).unwrap_or_else(|_| "1,4,8".to_owned());
    let axis: Vec<usize> = spec
        .split(',')
        .map(|t| t.trim().parse().expect("thread count"))
        .collect();
    assert!(
        axis.first() == Some(&1),
        "the axis must start at 1 thread (the normalization base): {spec:?}"
    );
    axis
}

fn main() {
    // Child mode: one measured run, then exit.
    if let Ok(threads) = std::env::var(THREADS_CHILD_ENV) {
        let preset = std::env::var(PRESET_ENV).expect("preset env");
        let path = std::env::var(TRACE_ENV).expect("trace path env");
        run_child(threads.parse().expect("thread count"), &preset, &path);
        return;
    }

    let knobs = Knobs::from_env();
    let workloads = knobs.workloads();
    assert!(!workloads.is_empty(), "no workloads selected");
    let axis = thread_axis();
    let host_cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    let preset = "detailed"; // densest per-cycle work: the honest scaling case
    eprintln!(
        "parallel-speedup sweep: two-phase engine at {axis:?} threads on {host_cores} host \
         cores [{}]",
        knobs.describe()
    );

    let dir =
        std::env::temp_dir().join(format!("swiftsim-parallel-speedup-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let mut cells: Vec<Cell> = Vec::new();
    for w in &workloads {
        let app = w.generate(knobs.scale);
        let path = dir.join(format!("{}.sstraceb", w.name));
        app.write_binary_file(&path).expect("write trace");
        drop(app); // the children load it themselves

        let base = measure(1, preset, &path);
        cells.push(Cell {
            app: w.name,
            threads: 1,
            cycles: base.cycles,
            wall_ms: base.wall_ms,
            base_ms: base.wall_ms,
        });
        for &threads in axis.iter().skip(1) {
            let m = measure(threads, preset, &path);
            assert_eq!(
                m.cycles, base.cycles,
                "{}@{threads}: parallel cycles must be bit-identical to 1 thread",
                w.name
            );
            assert_eq!(
                m.insts, base.insts,
                "{}@{threads}: parallel instruction counts must be bit-identical to 1 thread",
                w.name
            );
            eprintln!(
                "  {:<12} {:>2} threads  {:>12} cycles  {:>9.1} ms  {:>5.2}x vs 1 thread",
                w.name,
                threads,
                m.cycles,
                m.wall_ms,
                base.wall_ms / m.wall_ms.max(1e-6),
            );
            cells.push(Cell {
                app: w.name,
                threads,
                cycles: m.cycles,
                wall_ms: m.wall_ms,
                base_ms: base.wall_ms,
            });
        }
    }
    let _ = std::fs::remove_dir_all(&dir);

    let geo: Vec<(usize, f64)> = axis
        .iter()
        .skip(1)
        .map(|&threads| {
            let speedups: Vec<f64> = cells
                .iter()
                .filter(|c| c.threads == threads)
                .map(Cell::speedup)
                .collect();
            (threads, geomean(&speedups))
        })
        .collect();

    let mut json = String::new();
    json.push_str("{\n  \"bench\": \"parallel_speedup\",\n");
    json.push_str(&format!("  \"scale\": \"{:?}\",\n", knobs.scale));
    json.push_str(&format!("  \"preset\": \"{preset}\",\n"));
    json.push_str(&format!("  \"host_cores\": {host_cores},\n"));
    json.push_str(&format!("  \"apps\": {},\n", workloads.len()));
    json.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        json.push_str(&format!(
            "    {{ \"app\": \"{}\", \"threads\": {}, \"cycles\": {}, \
             \"wall_ms\": {:.3}, \"speedup\": {:.3} }}{}\n",
            c.app,
            c.threads,
            c.cycles,
            c.wall_ms,
            c.speedup(),
            if i + 1 == cells.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n  \"geomean_speedup\": {\n");
    for (i, (threads, g)) in geo.iter().enumerate() {
        json.push_str(&format!(
            "    \"{threads}\": {g:.3}{}\n",
            if i + 1 == geo.len() { "" } else { "," }
        ));
    }
    json.push_str("  }\n}\n");

    let out_path = std::env::var("SWIFTSIM_PARALLEL_SPEEDUP_OUT")
        .unwrap_or_else(|_| "BENCH_parallel_speedup.json".into());
    std::fs::write(&out_path, &json).expect("write bench json");

    println!("{json}");
    for (threads, g) in &geo {
        println!("{threads} threads: {g:.2}x vs 1 thread ({out_path})");
    }
    if let Some((threads, g)) = geo.last() {
        if *g < 3.0 {
            eprintln!(
                "WARNING: {threads}-thread geomean speedup {g:.2}x below the 3x target \
                 (host has {host_cores} cores; shard count above the core count measures \
                 synchronization overhead, not scaling)"
            );
        }
    }
}
