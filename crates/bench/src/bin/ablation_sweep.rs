//! Ablation study of Swift-Sim's own design choices (DESIGN.md calls for
//! these): what does each simplification and optimization contribute, and
//! what does it cost in fidelity?
//!
//! Dimensions:
//! * clock advance: dense per-cycle ticking vs the event-driven
//!   cycle-skipping engine (bit-identical results, wall-clock only),
//! * frontend-cache modeling on/off,
//! * analytical ALU vs cycle-accurate ALU (holding memory constant),
//! * hit-rate source: functional cache sim vs reuse-distance tool,
//! * NoC topology: crossbar vs mesh.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin ablation_sweep
//! ```

use std::time::Instant;
use swiftsim_bench::Knobs;
use swiftsim_core::{AluModelKind, MemoryModelKind, SimulatorBuilder, SkipPolicy};
use swiftsim_metrics::Table;

fn main() {
    let knobs = Knobs::from_env();
    let gpu = swiftsim_config::presets::rtx2080ti();
    let workload = knobs
        .workloads()
        .into_iter()
        .find(|w| w.name == "hotspot")
        .or_else(|| knobs.workloads().into_iter().next())
        .expect("at least one workload");
    let app = workload.generate(knobs.scale);
    eprintln!("ablation on {} [{}]", workload.name, knobs.describe());

    let cases: Vec<(&str, SimulatorBuilder)> = vec![
        (
            "detailed baseline, dense clock",
            SimulatorBuilder::new(gpu.clone()).skip_policy(SkipPolicy::Dense),
        ),
        (
            "detailed baseline (event-driven clock)",
            SimulatorBuilder::new(gpu.clone()),
        ),
        (
            "- per-cycle frontend caches",
            SimulatorBuilder::new(gpu.clone()).frontend_detailed(false),
        ),
        (
            "- cycle-accurate ALU (analytical ALU, = Swift-Sim-Basic)",
            SimulatorBuilder::new(gpu.clone())
                .frontend_detailed(false)
                .alu_model(AluModelKind::Analytical),
        ),
        (
            "+ analytical memory, funcsim rates (= Swift-Sim-Memory)",
            SimulatorBuilder::new(gpu.clone())
                .frontend_detailed(false)
                .alu_model(AluModelKind::Analytical)
                .memory_model(MemoryModelKind::Analytical),
        ),
        (
            "+ analytical memory, reuse-distance rates",
            SimulatorBuilder::new(gpu.clone())
                .frontend_detailed(false)
                .alu_model(AluModelKind::Analytical)
                .memory_model(MemoryModelKind::AnalyticalReuse),
        ),
        ("detailed baseline over a 2D-mesh NoC", {
            let mut mesh_gpu = gpu.clone();
            mesh_gpu.noc.topology = swiftsim_config::NocTopology::Mesh;
            SimulatorBuilder::new(mesh_gpu)
        }),
    ];

    let mut table = Table::new(vec!["Configuration", "Cycles", "Wall s", "Speedup"]);
    let mut baseline: Option<(u64, f64)> = None;
    for (label, builder) in cases {
        let sim = builder.build();
        let started = Instant::now();
        let r = sim.run(&app).expect("ablation run");
        let wall = started.elapsed().as_secs_f64();
        let (_, base_wall) = *baseline.get_or_insert((r.cycles, wall));
        table.row(vec![
            label.to_owned(),
            r.cycles.to_string(),
            format!("{wall:.3}"),
            format!("{:.1}x", base_wall / wall.max(1e-9)),
        ]);
    }
    println!();
    print!("{table}");
}
