//! Ablation study of Swift-Sim's own design choices (DESIGN.md calls for
//! these): what does each simplification and optimization contribute, and
//! what does it cost in fidelity?
//!
//! Dimensions:
//! * clock advance: dense per-cycle ticking vs the event-driven
//!   cycle-skipping engine (bit-identical results, wall-clock only),
//! * frontend-cache modeling on/off,
//! * analytical ALU vs cycle-accurate ALU (holding memory constant),
//! * hit-rate source: functional cache sim vs reuse-distance tool,
//! * NoC topology: crossbar vs mesh.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin ablation_sweep
//! ```

use std::time::Instant;
use swiftsim_bench::Knobs;
use swiftsim_core::{
    AluModelKind, FidelityConfig, FrontendModelKind, GpuSimulator, MemoryModelKind, RunOptions,
    SkipPolicy,
};
use swiftsim_metrics::Table;

fn main() {
    let knobs = Knobs::from_env();
    let gpu = swiftsim_config::presets::rtx2080ti();
    let workload = knobs
        .workloads()
        .into_iter()
        .find(|w| w.name == "hotspot")
        .or_else(|| knobs.workloads().into_iter().next())
        .expect("at least one workload");
    let app = workload.generate(knobs.scale);
    eprintln!("ablation on {} [{}]", workload.name, knobs.describe());

    let mesh_gpu = {
        let mut mesh_gpu = gpu.clone();
        mesh_gpu.noc.topology = swiftsim_config::NocTopology::Mesh;
        mesh_gpu
    };
    let cases: Vec<(&str, swiftsim_config::GpuConfig, FidelityConfig)> = vec![
        (
            "detailed baseline, dense clock",
            gpu.clone(),
            FidelityConfig {
                skip_policy: SkipPolicy::Dense,
                ..FidelityConfig::default()
            },
        ),
        (
            "detailed baseline (event-driven clock)",
            gpu.clone(),
            FidelityConfig::default(),
        ),
        (
            "- per-cycle frontend caches",
            gpu.clone(),
            FidelityConfig {
                frontend: FrontendModelKind::Simplified,
                ..FidelityConfig::default()
            },
        ),
        (
            "- cycle-accurate ALU (analytical ALU, = Swift-Sim-Basic)",
            gpu.clone(),
            FidelityConfig {
                frontend: FrontendModelKind::Simplified,
                alu: AluModelKind::Analytical,
                ..FidelityConfig::default()
            },
        ),
        (
            "+ analytical memory, funcsim rates (= Swift-Sim-Memory)",
            gpu.clone(),
            FidelityConfig {
                frontend: FrontendModelKind::Simplified,
                alu: AluModelKind::Analytical,
                memory: MemoryModelKind::Analytical,
                ..FidelityConfig::default()
            },
        ),
        (
            "+ analytical memory, reuse-distance rates",
            gpu.clone(),
            FidelityConfig {
                frontend: FrontendModelKind::Simplified,
                alu: AluModelKind::Analytical,
                memory: MemoryModelKind::AnalyticalReuse,
                ..FidelityConfig::default()
            },
        ),
        (
            "detailed baseline over a 2D-mesh NoC",
            mesh_gpu,
            FidelityConfig::default(),
        ),
    ];

    let mut table = Table::new(vec!["Configuration", "Cycles", "Wall s", "Speedup"]);
    let mut baseline: Option<(u64, f64)> = None;
    for (label, case_gpu, fidelity) in cases {
        let options = RunOptions::default().with_fidelity(fidelity);
        let sim = GpuSimulator::try_new(case_gpu, &options).expect("ablation simulator");
        let started = Instant::now();
        let r = sim.run(&app).expect("ablation run");
        let wall = started.elapsed().as_secs_f64();
        let (_, base_wall) = *baseline.get_or_insert((r.cycles, wall));
        table.row(vec![
            label.to_owned(),
            r.cycles.to_string(),
            format!("{wall:.3}"),
            format!("{:.1}x", base_wall / wall.max(1e-9)),
        ]);
    }
    println!();
    print!("{table}");
}
