//! Regenerates **Fig. 5**: contribution analysis of the speedup —
//! single-threaded Swift-Sim-Basic over the baseline, the additional
//! factor from the analytical memory model, and the additional factor from
//! multithreaded simulation.
//!
//! Paper targets: Basic 14.5x single-threaded; Memory adds 2.7x (39.7x
//! total single-threaded); parallelism adds ~5x for both (82.6x / 211.2x).
//!
//! ```sh
//! SWIFTSIM_SCALE=paper cargo run --release -p swiftsim-bench --bin fig5_contribution
//! ```

use swiftsim_bench::{geomean_of, sweep_app_cached, Knobs};
use swiftsim_metrics::Table;

fn main() {
    let knobs = Knobs::from_env();
    let gpu = swiftsim_config::presets::rtx2080ti();
    eprintln!(
        "Fig. 5: speedup contribution analysis [{}]",
        knobs.describe()
    );

    let mut results = Vec::new();
    for w in knobs.workloads() {
        eprintln!("  running {} ...", w.name);
        results.push(sweep_app_cached(&gpu, &w, &knobs));
    }

    let basic_1t = geomean_of(&results, |r| r.speedup(r.basic_1t));
    let memory_1t = geomean_of(&results, |r| r.speedup(r.memory_1t));
    let basic_mt = geomean_of(&results, |r| r.speedup(r.basic_mt));
    let memory_mt = geomean_of(&results, |r| r.speedup(r.memory_mt));

    let mut t = Table::new(vec!["Configuration", "Speedup (geomean)", "Factor"]);
    t.row(vec![
        "baseline (detailed, 1 thread)".into(),
        "1.0x".into(),
        "-".into(),
    ]);
    t.row(vec![
        "+ analytical ALU & simplified frontend (Basic, 1 thread)".into(),
        format!("{basic_1t:.1}x"),
        format!("{basic_1t:.1}x"),
    ]);
    t.row(vec![
        "+ analytical memory (Memory, 1 thread)".into(),
        format!("{memory_1t:.1}x"),
        format!("{:.1}x", memory_1t / basic_1t.max(1e-9)),
    ]);
    t.row(vec![
        format!("+ parallel simulation (Basic, {} threads)", knobs.threads),
        format!("{basic_mt:.1}x"),
        format!("{:.1}x", basic_mt / basic_1t.max(1e-9)),
    ]);
    t.row(vec![
        format!("+ parallel simulation (Memory, {} threads)", knobs.threads),
        format!("{memory_mt:.1}x"),
        format!("{:.1}x", memory_mt / memory_1t.max(1e-9)),
    ]);

    println!();
    print!("{t}");
    println!();
    println!(
        "paper: Basic 14.5x (1 thread); Memory +2.7x = 39.7x (1 thread); parallel ~5x -> 82.6x / 211.2x"
    );
}
