//! Regenerates **Fig. 6**: prediction errors of Swift-Sim-Basic and the
//! detailed baseline across three GPU architectures.
//!
//! The 3 GPUs × apps × {detailed, basic} grid runs as one campaign: jobs
//! execute in parallel on the campaign worker pool and repeat invocations
//! are served from the content-addressed result cache. Rows are then
//! joined with the silicon oracle via [`CampaignReport::find`].
//!
//! Paper targets: on the RTX 3060 Basic 25.14% vs Accel-Sim 23.81%; on the
//! RTX 3090 Basic 20.23% vs Accel-Sim 27.93% (Accel-Sim degraded by cache
//! reservation failures on BFS/ADI/LU).
//!
//! ```sh
//! SWIFTSIM_SCALE=paper cargo run --release -p swiftsim-bench --bin fig6_cross_gpu
//! ```

use swiftsim_bench::Knobs;
use swiftsim_campaign::{
    run_campaign, CampaignOptions, CampaignReport, CampaignSpec, GpuSource, WorkloadSource,
};
use swiftsim_core::SimulatorPreset;
use swiftsim_metrics::{mean, Table};
use swiftsim_workloads::silicon;

const GPUS: [&str; 3] = ["rtx2080ti", "rtx3060", "rtx3090"];

/// Cycles predicted by `preset` for (workload, GPU), if that job finished.
fn predicted(
    report: &CampaignReport,
    app: &str,
    gpu: &str,
    preset: SimulatorPreset,
) -> Option<u64> {
    report
        .find(app, gpu, preset.label())
        .and_then(|row| row.result.as_ref())
        .map(|r| r.cycles)
}

fn error_pct(predicted: u64, hardware: u64) -> f64 {
    100.0 * (predicted as f64 - hardware as f64).abs() / hardware as f64
}

fn main() {
    let knobs = Knobs::from_env();
    eprintln!("Fig. 6: cross-architecture accuracy [{}]", knobs.describe());

    let spec = CampaignSpec {
        name: "fig6-cross-gpu".to_owned(),
        presets: vec![SimulatorPreset::Detailed, SimulatorPreset::SwiftBasic],
        gpus: GPUS
            .iter()
            .map(|g| GpuSource::Preset((*g).to_owned()))
            .collect(),
        workloads: knobs
            .workloads()
            .iter()
            .map(|w| WorkloadSource::Builtin(w.name.to_owned()))
            .collect(),
        scale: knobs.scale,
        ..CampaignSpec::default()
    };
    let report = run_campaign(&spec, &CampaignOptions::default()).expect("fig6 campaign");
    eprintln!("{}", report.summary_line());

    let mut summary = Table::new(vec!["GPU", "Baseline mean err %", "Basic mean err %"]);
    for gpu in swiftsim_config::presets::all() {
        let mut t = Table::new(vec!["App", "Baseline err %", "Basic err %"]);
        let mut baseline_errs = Vec::new();
        let mut basic_errs = Vec::new();
        for w in knobs.workloads() {
            let detailed = predicted(&report, w.name, &gpu.name, SimulatorPreset::Detailed);
            let basic = predicted(&report, w.name, &gpu.name, SimulatorPreset::SwiftBasic);
            let (Some(detailed), Some(basic)) = (detailed, basic) else {
                eprintln!("  {} on {}: job failed, skipping", w.name, gpu.name);
                t.row(vec![w.name.to_owned(), "error".into(), "error".into()]);
                continue;
            };
            // The oracle derives "measured hardware" cycles from the
            // detailed baseline's prediction, as in the lib sweeps.
            let hardware = silicon::hardware_cycles(w.name, &gpu.name, detailed);
            baseline_errs.push(error_pct(detailed, hardware));
            basic_errs.push(error_pct(basic, hardware));
            t.row(vec![
                w.name.to_owned(),
                format!("{:.1}", error_pct(detailed, hardware)),
                format!("{:.1}", error_pct(basic, hardware)),
            ]);
        }
        println!();
        println!("{}:", gpu.name);
        print!("{t}");
        summary.row(vec![
            gpu.name.clone(),
            format!("{:.2}", mean(&baseline_errs)),
            format!("{:.2}", mean(&basic_errs)),
        ]);
    }

    println!();
    println!("Summary:");
    print!("{summary}");
    println!();
    println!("paper: RTX 3060 — Accel-Sim 23.81%, Basic 25.14%; RTX 3090 — Accel-Sim 27.93%, Basic 20.23%");
}
