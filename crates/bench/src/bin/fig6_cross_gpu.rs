//! Regenerates **Fig. 6**: prediction errors of Swift-Sim-Basic and the
//! detailed baseline across three GPU architectures.
//!
//! Paper targets: on the RTX 3060 Basic 25.14% vs Accel-Sim 23.81%; on the
//! RTX 3090 Basic 20.23% vs Accel-Sim 27.93% (Accel-Sim degraded by cache
//! reservation failures on BFS/ADI/LU).
//!
//! ```sh
//! SWIFTSIM_SCALE=paper cargo run --release -p swiftsim-bench --bin fig6_cross_gpu
//! ```

use swiftsim_bench::{mean_of, sweep_app_accuracy_cached, Knobs};
use swiftsim_metrics::Table;

fn main() {
    let knobs = Knobs::from_env();
    eprintln!("Fig. 6: cross-architecture accuracy [{}]", knobs.describe());

    let mut summary = Table::new(vec!["GPU", "Baseline mean err %", "Basic mean err %"]);
    for gpu in swiftsim_config::presets::all() {
        eprintln!("== {} ==", gpu.name);
        let mut t = Table::new(vec!["App", "Baseline err %", "Basic err %"]);
        let mut results = Vec::new();
        for w in knobs.workloads() {
            eprintln!("  running {} ...", w.name);
            let r = sweep_app_accuracy_cached(&gpu, &w, knobs.scale);
            t.row(vec![
                r.app.to_owned(),
                format!("{:.1}", 100.0 * r.error(r.detailed)),
                format!("{:.1}", 100.0 * r.error(r.basic_1t)),
            ]);
            results.push(r);
        }
        println!();
        println!("{}:", gpu.name);
        print!("{t}");
        summary.row(vec![
            gpu.name.clone(),
            format!("{:.2}", 100.0 * mean_of(&results, |r| r.error(r.detailed))),
            format!("{:.2}", 100.0 * mean_of(&results, |r| r.error(r.basic_1t))),
        ]);
    }

    println!();
    println!("Summary:");
    print!("{summary}");
    println!();
    println!("paper: RTX 3060 — Accel-Sim 23.81%, Basic 25.14%; RTX 3090 — Accel-Sim 27.93%, Basic 20.23%");
}
