//! Regenerates **Table I**: comparison of the three NVIDIA GPUs the paper
//! validates against.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin table1_gpus
//! ```

use swiftsim_metrics::Table;

fn main() {
    let gpus = swiftsim_config::presets::all();
    let mut t = Table::new(vec!["NVIDIA GPUs", "RTX 2080 Ti", "RTX 3060", "RTX 3090"]);
    let col = |f: &dyn Fn(&swiftsim_config::GpuConfig) -> String| -> Vec<String> {
        gpus.iter().map(f).collect()
    };
    let rows: Vec<(&str, Vec<String>)> = vec![
        ("Architecture", col(&|g| g.architecture.clone())),
        ("SMs", col(&|g| g.num_sms.to_string())),
        ("CUDA Cores", col(&|g| g.cuda_cores().to_string())),
        (
            "L2 Cache",
            col(&|g| {
                let kib = g.memory.l2_capacity_bytes() as f64 / 1024.0 / 1024.0;
                format!("{kib}MB")
            }),
        ),
    ];
    for (name, cells) in rows {
        let mut row = vec![name.to_owned()];
        row.extend(cells);
        t.row(row);
    }
    println!("Table I: comparison of three NVIDIA GPUs");
    println!();
    print!("{t}");
}
