//! Kernel-level sampling benchmark: a sampled run of an iterative
//! application vs the same run with every launch simulated in detail.
//!
//! The workload is the case sampling exists for — a training-loop-shaped
//! app that launches the *same* two kernels once per iteration. Under
//! `-sim_sampling cluster:N` the first N instances of each cluster run in
//! detail and the rest replay analytically, so wall time should drop
//! roughly by the repetition factor while the predicted cycles stay within
//! the error bound the `confidence` block reports. Both claims are checked
//! here and written to `BENCH_sampling.json`.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin sampling
//! SWIFTSIM_SAMPLING_ITERS=64 SWIFTSIM_SAMPLING_REPS=4 \
//!   cargo run --release -p swiftsim-bench --bin sampling
//! ```

use std::time::Instant;
use swiftsim_core::{run, RunOptions, SamplingPolicy, SimulatorPreset};
use swiftsim_trace::ApplicationTrace;
use swiftsim_workloads::{MemPattern, Mix, PatternKernel, Scale};

fn bench_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = swiftsim_config::presets::rtx2080ti();
    cfg.num_sms = 8;
    cfg.memory.partitions = 4;
    cfg
}

/// An iterative app: `iters` repetitions of a compute step and a
/// memory-heavy reduce step. Two clusters, `iters` launches each.
fn iterative_app(iters: usize) -> ApplicationTrace {
    let step = PatternKernel {
        name: "train_step".to_owned(),
        blocks: 64,
        threads_per_block: 128,
        iters: 12,
        mix: Mix {
            loads: 2,
            stores: 1,
            fp: 6,
            int_ops: 3,
            ..Mix::default()
        },
        pattern: MemPattern::Streaming,
        shared_mem_bytes: 0,
        regs_per_thread: 32,
        barrier: false,
    }
    .generate(Scale::Small);
    let reduce = PatternKernel {
        name: "grad_reduce".to_owned(),
        blocks: 32,
        threads_per_block: 128,
        iters: 8,
        mix: Mix {
            loads: 3,
            stores: 1,
            int_ops: 2,
            ..Mix::default()
        },
        pattern: MemPattern::Strided { lane_stride: 128 },
        shared_mem_bytes: 0,
        regs_per_thread: 32,
        barrier: false,
    }
    .generate(Scale::Small);

    let mut kernels = Vec::with_capacity(iters * 2);
    for _ in 0..iters {
        kernels.push(step.clone());
        kernels.push(reduce.clone());
    }
    ApplicationTrace::new("train_loop", kernels)
}

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let iters = env_usize("SWIFTSIM_SAMPLING_ITERS", 32);
    let reps = env_usize("SWIFTSIM_SAMPLING_REPS", 2) as u32;
    let preset = SimulatorPreset::SwiftBasic; // detailed memory: replay skips real work

    eprintln!("generating iterative app ({iters} iterations, 2 kernels each) ...");
    let app = iterative_app(iters);
    let launches = app.kernels().len();
    let insts = app.num_insts();
    let gpu = bench_gpu();
    eprintln!("trace: {launches} launches, {insts} instructions");

    eprintln!("measuring ground truth (every launch in detail) ...");
    let t0 = Instant::now();
    let exact =
        run(&app, &gpu, &RunOptions::default().with_preset(preset)).expect("ground-truth run");
    let exact_ms = t0.elapsed().as_secs_f64() * 1e3;

    eprintln!("measuring sampled run (cluster:{reps}) ...");
    let t0 = Instant::now();
    let sampled = run(
        &app,
        &gpu,
        &RunOptions::default()
            .with_preset(preset)
            .with_sampling(SamplingPolicy::KernelCluster { reps }),
    )
    .expect("sampled run");
    let sampled_ms = t0.elapsed().as_secs_f64() * 1e3;

    let conf = sampled
        .confidence
        .as_ref()
        .expect("sampled runs report a confidence block");
    let rel_error = (sampled.cycles as f64 - exact.cycles as f64).abs() / exact.cycles as f64;
    let within_bound = rel_error <= conf.app_error_bound + 1e-9;
    let speedup = exact_ms / sampled_ms.max(1e-6);
    assert!(
        within_bound,
        "sampled cycles {} vs exact {}: relative error {rel_error:.4} exceeds the \
         reported bound {:.4}",
        sampled.cycles, exact.cycles, conf.app_error_bound
    );

    let json = format!(
        "{{\n  \"bench\": \"sampling\",\n  \"preset\": \"swift_basic\",\n  \
         \"iterations\": {iters},\n  \"launches\": {launches},\n  \"instructions\": {insts},\n  \
         \"policy\": \"cluster:{reps}\",\n  \"clusters\": {},\n  \
         \"sampled_kernels\": {},\n  \"replayed_kernels\": {},\n  \
         \"exact\": {{ \"cycles\": {}, \"wall_ms\": {exact_ms:.1} }},\n  \
         \"sampled\": {{ \"cycles\": {}, \"wall_ms\": {sampled_ms:.1} }},\n  \
         \"rel_error\": {rel_error:.6},\n  \"app_error_bound\": {:.6},\n  \
         \"within_bound\": {within_bound},\n  \"speedup\": {speedup:.2}\n}}\n",
        conf.clusters,
        conf.sampled_kernels,
        conf.replayed_kernels,
        exact.cycles,
        sampled.cycles,
        conf.app_error_bound,
    );
    let out_path =
        std::env::var("SWIFTSIM_SAMPLING_OUT").unwrap_or_else(|_| "BENCH_sampling.json".into());
    std::fs::write(&out_path, &json).expect("write bench json");

    println!("{json}");
    println!(
        "sampled run: {speedup:.1}x faster, {:.2}% error (bound {:.2}%) ({out_path})",
        rel_error * 100.0,
        conf.app_error_bound * 100.0
    );
    if speedup < 5.0 {
        eprintln!(
            "WARNING: sampling speedup {speedup:.1}x below the 5x target \
             ({} of {launches} launches replayed)",
            conf.replayed_kernels
        );
    }
}
