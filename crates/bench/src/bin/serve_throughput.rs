//! Serve-daemon throughput benchmark: jobs/sec and queue latency under
//! concurrent clients, cold vs warm.
//!
//! For each client count (1, 4, 16) a **fresh** in-process daemon is
//! started (warm caches are per-daemon, so cold really is cold), and the
//! clients submit distinct single-job tiny sweeps over real TCP
//! connections, each waiting for its result. The same submissions are
//! then replayed against the same daemon: every one should land in the
//! warm result cache, which is the daemon's whole value proposition —
//! the report asserts the warm p50 latency actually dropped.
//!
//! Writes `BENCH_serve_throughput.json`:
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin serve_throughput
//! SWIFTSIM_SERVE_BENCH_TASKS=64 cargo run --release -p swiftsim-bench --bin serve_throughput
//! ```

use std::time::{Duration, Instant};
use swiftsim_serve::client::ServeClient;
use swiftsim_serve::server::{self, ServeOptions};

const CLIENT_COUNTS: &[usize] = &[1, 4, 16];

/// Distinct single-job specs: every (workload, preset, scheduler) combo
/// is a different content-addressed job key, so a cold round never
/// accidentally warms itself.
fn job_specs(n: usize) -> Vec<String> {
    let workloads = [
        "nw",
        "bfs",
        "hotspot",
        "pathfinder",
        "backprop",
        "srad",
        "adi",
        "gemm",
        "lu",
        "mvt",
        "2dconv",
        "sm",
    ];
    let presets = ["swift-sim-basic", "swift-sim-memory"];
    let schedulers = ["gto", "lrr"];
    let mut specs = Vec::with_capacity(n);
    'outer: for scheduler in schedulers {
        for preset in presets {
            for workload in workloads {
                specs.push(format!(
                    "name = bench\nworkload = {workload}\nscale = tiny\n\
                     preset = {preset}\nscheduler = {scheduler}\n"
                ));
                if specs.len() == n {
                    break 'outer;
                }
            }
        }
    }
    assert_eq!(specs.len(), n, "not enough distinct combos for {n} tasks");
    specs
}

#[derive(Debug, Clone, Copy)]
struct Phase {
    jobs_per_sec: f64,
    p50_ms: f64,
    p95_ms: f64,
    wall_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// One phase: `clients` threads submit their share of `specs` and block
/// for each result. Returns throughput and submit→terminal latencies.
fn run_phase(addr: &str, clients: usize, specs: &[String]) -> Phase {
    let started = Instant::now();
    let latencies: Vec<f64> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (c, chunk) in specs.chunks(specs.len() / clients).enumerate() {
            let addr = addr.to_owned();
            handles.push(scope.spawn(move || {
                let mut client = ServeClient::connect(&addr).expect("connect");
                let name = format!("bench-client-{c}");
                let mut lats = Vec::with_capacity(chunk.len());
                for spec in chunk {
                    let t0 = Instant::now();
                    let (job, tasks) = client.submit(spec, &name, 0).expect("submit");
                    assert_eq!(tasks, 1);
                    let report = client
                        .wait_result(job, Duration::from_secs(600))
                        .expect("result");
                    assert!(report.get("rows").is_some());
                    lats.push(t0.elapsed().as_secs_f64() * 1e3);
                }
                lats
            }));
        }
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();

    let mut sorted = latencies.clone();
    sorted.sort_by(f64::total_cmp);
    Phase {
        jobs_per_sec: specs.len() as f64 / wall.as_secs_f64().max(1e-9),
        p50_ms: percentile(&sorted, 0.50),
        p95_ms: percentile(&sorted, 0.95),
        wall_ms: wall.as_secs_f64() * 1e3,
    }
}

fn phase_json(p: &Phase) -> String {
    format!(
        "{{ \"jobs_per_sec\": {:.1}, \"p50_ms\": {:.2}, \"p95_ms\": {:.2}, \"wall_ms\": {:.1} }}",
        p.jobs_per_sec, p.p50_ms, p.p95_ms, p.wall_ms
    )
}

fn main() {
    let tasks: usize = std::env::var("SWIFTSIM_SERVE_BENCH_TASKS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let scratch = std::env::temp_dir().join(format!("swiftsim-serve-bench-{}", std::process::id()));

    let mut rounds = Vec::new();
    for &clients in CLIENT_COUNTS {
        // Round tasks to a multiple of the client count so chunks are even.
        let n = tasks.max(clients) / clients * clients;
        let specs = job_specs(n);

        let handle = server::start(ServeOptions {
            listen: "127.0.0.1:0".to_owned(),
            cache_dir: scratch.join(format!("cache-{clients}")),
            cache: swiftsim_campaign::CacheMode::Off, // isolate the warm layer
            ..ServeOptions::default()
        })
        .expect("daemon starts");
        let addr = handle.addr().to_string();

        eprintln!("[{clients} client(s)] cold: {n} distinct jobs ...");
        let cold = run_phase(&addr, clients, &specs);
        eprintln!("[{clients} client(s)] warm: resubmitting the same {n} ...");
        let warm = run_phase(&addr, clients, &specs);
        handle.shutdown();

        let speedup = cold.p50_ms / warm.p50_ms.max(1e-6);
        eprintln!(
            "[{clients} client(s)] cold {:.1} jobs/s p50 {:.2} ms | warm {:.1} jobs/s p50 {:.2} ms ({speedup:.0}x)",
            cold.jobs_per_sec, cold.p50_ms, warm.jobs_per_sec, warm.p50_ms
        );
        assert!(
            warm.p50_ms < cold.p50_ms,
            "warm resubmission must be faster than cold ({} vs {} ms)",
            warm.p50_ms,
            cold.p50_ms
        );
        rounds.push(format!(
            "    {{ \"clients\": {clients}, \"tasks\": {n}, \"cold\": {}, \"warm\": {}, \"warm_p50_speedup\": {speedup:.1} }}",
            phase_json(&cold),
            phase_json(&warm)
        ));
    }
    let _ = std::fs::remove_dir_all(&scratch);

    let json = format!(
        "{{\n  \"bench\": \"serve_throughput\",\n  \"rounds\": [\n{}\n  ]\n}}\n",
        rounds.join(",\n")
    );
    let out_path = std::env::var("SWIFTSIM_SERVE_BENCH_OUT")
        .unwrap_or_else(|_| "BENCH_serve_throughput.json".into());
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    println!("written to {out_path}");
}
