//! Design-space-exploration demonstration (§IV-B3): sweep warp-scheduler
//! policies and L1 replacement policies across several workloads with the
//! fast hybrid presets, the workflow the framework is built for.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin dse_sweep
//! ```

use swiftsim_bench::Knobs;
use swiftsim_config::{presets, ReplacementPolicy, SchedulerPolicy};
use swiftsim_core::{SimulatorBuilder, SimulatorPreset};
use swiftsim_metrics::Table;
use swiftsim_workloads::{MemPattern, Mix, PatternKernel, Scale};

fn main() {
    let knobs = Knobs::from_env();
    let apps: Vec<_> = knobs
        .workloads()
        .into_iter()
        .filter(|w| ["bfs", "gemm", "hotspot", "kmeans", "mvt"].contains(&w.name))
        .collect();
    eprintln!("DSE sweep [{}]", knobs.describe());

    // Scheduler sweep with Swift-Sim-Memory (scheduler stays
    // cycle-accurate, everything else analytical).
    let mut sched = Table::new(vec!["App", "GTO", "LRR", "Two-level"]);
    for w in &apps {
        let app = w.generate(knobs.scale);
        let mut cells = vec![w.name.to_owned()];
        for policy in [SchedulerPolicy::Gto, SchedulerPolicy::Lrr, SchedulerPolicy::TwoLevel] {
            let mut gpu = presets::rtx2080ti();
            gpu.sm.scheduler = policy;
            let r = SimulatorBuilder::new(gpu)
                .preset(SimulatorPreset::SwiftMemory)
                .threads(knobs.threads)
                .build()
                .run(&app)
                .expect("dse run");
            cells.push(r.cycles.to_string());
        }
        sched.row(cells);
    }
    println!("Warp-scheduler sweep (cycles, Swift-Sim-Memory):");
    println!();
    print!("{sched}");

    // Replacement-policy sweep needs the cycle-accurate cache: Swift-Sim-
    // Basic (the exact scenario §II-B says analytical models cannot cover).
    let mut repl = Table::new(vec!["App", "LRU", "FIFO", "Random"]);
    for w in &apps {
        let app = w.generate(knobs.scale);
        let mut cells = vec![w.name.to_owned()];
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ] {
            let mut gpu = presets::rtx2080ti();
            gpu.sm.l1d.replacement = policy;
            let r = SimulatorBuilder::new(gpu)
                .preset(SimulatorPreset::SwiftBasic)
                .threads(knobs.threads)
                .build()
                .run(&app)
                .expect("dse run");
            cells.push(r.cycles.to_string());
        }
        repl.row(cells);
    }
    println!();
    println!("L1 replacement-policy sweep (cycles, Swift-Sim-Basic):");
    println!();
    print!("{repl}");

    // The suite's working sets dwarf the 64 KiB L1, so the policies tie
    // above. A cyclic sweep slightly larger than the L1 is the classic
    // separator: LRU and FIFO evict exactly what is about to be reused
    // (zero hits), Random retains part of the set — the behaviour gap
    // §II-B says LRU-only analytical cache models cannot express.
    let resident = PatternKernel {
        name: "l1_cyclic_sweep".to_owned(),
        // Eight resident 16 KiB tiles per SM: twice the L1 capacity, swept
        // cyclically. Generated at fixed size (not knobs.scale) because the
        // cache pressure is the point of the experiment.
        blocks: 544, // 68 SMs x 8 resident blocks
        threads_per_block: 128,
        iters: 24,
        mix: Mix { loads: 4, stores: 0, int_ops: 3, ..Mix::default() },
        pattern: MemPattern::Tiled { tile_bytes: 16 * 1024 },
        shared_mem_bytes: 0,
        regs_per_thread: 32,
        barrier: false,
    };
    let app = swiftsim_trace::ApplicationTrace::new(
        "l1_resident",
        vec![resident.generate(Scale::Paper)],
    );
    let mut fine = Table::new(vec!["Replacement", "Cycles", "L1 miss rate"]);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        let mut gpu = presets::rtx2080ti();
        gpu.sm.l1d.replacement = policy;
        let r = SimulatorBuilder::new(gpu)
            .preset(SimulatorPreset::SwiftBasic)
            .build()
            .run(&app)
            .expect("dse run");
        fine.row(vec![
            policy.to_string(),
            r.cycles.to_string(),
            format!("{:.3}", r.metrics.ratio("mem.l1.miss_rate").unwrap_or(0.0)),
        ]);
    }
    println!();
    println!("Replacement sweep on a cache-pressured cyclic kernel:");
    println!();
    print!("{fine}");
}
