//! Design-space-exploration demonstration (§IV-B3): sweep warp-scheduler
//! policies and L1 replacement policies across several workloads with the
//! fast hybrid presets, the workflow the framework is built for.
//!
//! Both sweeps run as *campaigns*: the `swiftsim-campaign` engine expands
//! the policy × workload grid, simulates the jobs on a worker pool, and
//! serves repeat invocations from the content-addressed result cache — so
//! re-running this binary after editing one policy only re-simulates the
//! affected cells.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin dse_sweep
//! ```

use swiftsim_bench::Knobs;
use swiftsim_campaign::{
    run_campaign, CampaignOptions, CampaignReport, CampaignSpec, WorkloadSource,
};
use swiftsim_config::{presets, ReplacementPolicy, SchedulerPolicy};
use swiftsim_core::{run, RunOptions, SimulatorPreset};
use swiftsim_metrics::Table;
use swiftsim_workloads::{MemPattern, Mix, PatternKernel, Scale};

const DSE_APPS: [&str; 5] = ["bfs", "gemm", "hotspot", "kmeans", "mvt"];

/// The campaign-row cycles for (workload, policy-column), rendered as a
/// table cell; failed jobs show up as `error` instead of aborting the
/// whole sweep.
fn cycles_cell(report: &CampaignReport, app: &str, column: &Option<String>) -> String {
    report
        .rows
        .iter()
        .find(|r| r.workload == app && (&r.scheduler == column || &r.replacement == column))
        .map_or_else(
            || "error".to_owned(),
            |r| match &r.result {
                Some(res) => res.cycles.to_string(),
                None => "error".to_owned(),
            },
        )
}

fn policy_table(report: &CampaignReport, apps: &[&str], columns: &[String]) -> Table {
    let mut headers = vec!["App".to_owned()];
    headers.extend(columns.iter().cloned());
    let mut t = Table::new(headers);
    for app in apps {
        let mut cells = vec![(*app).to_owned()];
        for col in columns {
            cells.push(cycles_cell(report, app, &Some(col.clone())));
        }
        t.row(cells);
    }
    t
}

fn main() {
    let knobs = Knobs::from_env();
    let apps: Vec<String> = knobs
        .workloads()
        .into_iter()
        .filter(|w| DSE_APPS.contains(&w.name))
        .map(|w| w.name.to_owned())
        .collect();
    let app_refs: Vec<&str> = apps.iter().map(String::as_str).collect();
    eprintln!("DSE sweep [{}]", knobs.describe());

    let base = CampaignSpec {
        workloads: apps.iter().cloned().map(WorkloadSource::Builtin).collect(),
        scale: knobs.scale,
        threads: vec![knobs.threads],
        ..CampaignSpec::default()
    };
    let opts = CampaignOptions::default();

    // Scheduler sweep with Swift-Sim-Memory (scheduler stays
    // cycle-accurate, everything else analytical).
    let sched_spec = CampaignSpec {
        name: "dse-scheduler".to_owned(),
        presets: vec![SimulatorPreset::SwiftMemory],
        schedulers: [
            SchedulerPolicy::Gto,
            SchedulerPolicy::Lrr,
            SchedulerPolicy::TwoLevel,
        ]
        .into_iter()
        .map(Some)
        .collect(),
        ..base.clone()
    };
    let sched = run_campaign(&sched_spec, &opts).expect("scheduler campaign");
    eprintln!("scheduler sweep: {}", sched.summary_line());
    println!("Warp-scheduler sweep (cycles, Swift-Sim-Memory):");
    println!();
    let columns: Vec<String> = sched_spec
        .schedulers
        .iter()
        .map(|s| s.unwrap().to_string())
        .collect();
    print!("{}", policy_table(&sched, &app_refs, &columns));

    // Replacement-policy sweep needs the cycle-accurate cache: Swift-Sim-
    // Basic (the exact scenario §II-B says analytical models cannot cover).
    let repl_spec = CampaignSpec {
        name: "dse-replacement".to_owned(),
        presets: vec![SimulatorPreset::SwiftBasic],
        replacements: [
            ReplacementPolicy::Lru,
            ReplacementPolicy::Fifo,
            ReplacementPolicy::Random,
        ]
        .into_iter()
        .map(Some)
        .collect(),
        ..base
    };
    let repl = run_campaign(&repl_spec, &opts).expect("replacement campaign");
    eprintln!("replacement sweep: {}", repl.summary_line());
    println!();
    println!("L1 replacement-policy sweep (cycles, Swift-Sim-Basic):");
    println!();
    let columns: Vec<String> = repl_spec
        .replacements
        .iter()
        .map(|r| r.unwrap().to_string())
        .collect();
    print!("{}", policy_table(&repl, &app_refs, &columns));

    // The suite's working sets dwarf the 64 KiB L1, so the policies tie
    // above. A cyclic sweep slightly larger than the L1 is the classic
    // separator: LRU and FIFO evict exactly what is about to be reused
    // (zero hits), Random retains part of the set — the behaviour gap
    // §II-B says LRU-only analytical cache models cannot express.
    let resident = PatternKernel {
        name: "l1_cyclic_sweep".to_owned(),
        // Eight resident 16 KiB tiles per SM: twice the L1 capacity, swept
        // cyclically. Generated at fixed size (not knobs.scale) because the
        // cache pressure is the point of the experiment.
        blocks: 544, // 68 SMs x 8 resident blocks
        threads_per_block: 128,
        iters: 24,
        mix: Mix {
            loads: 4,
            stores: 0,
            int_ops: 3,
            ..Mix::default()
        },
        pattern: MemPattern::Tiled {
            tile_bytes: 16 * 1024,
        },
        shared_mem_bytes: 0,
        regs_per_thread: 32,
        barrier: false,
    };
    let app =
        swiftsim_trace::ApplicationTrace::new("l1_resident", vec![resident.generate(Scale::Paper)]);
    let mut fine = Table::new(vec!["Replacement", "Cycles", "L1 miss rate"]);
    for policy in [
        ReplacementPolicy::Lru,
        ReplacementPolicy::Fifo,
        ReplacementPolicy::Random,
    ] {
        let mut gpu = presets::rtx2080ti();
        gpu.sm.l1d.replacement = policy;
        match run(
            &app,
            &gpu,
            &RunOptions::default().with_preset(SimulatorPreset::SwiftBasic),
        ) {
            Ok(r) => fine.row(vec![
                policy.to_string(),
                r.cycles.to_string(),
                format!("{:.3}", r.metrics.ratio("mem.l1.miss_rate").unwrap_or(0.0)),
            ]),
            Err(e) => {
                eprintln!("l1_cyclic_sweep with {policy} failed: {e}");
                fine.row(vec![policy.to_string(), "error".into(), "-".into()]);
            }
        }
    }
    println!();
    println!("Replacement sweep on a cache-pressured cyclic kernel:");
    println!();
    print!("{fine}");
}
