//! Regenerates the scatter plot of **Fig. 4**: wall-clock speedup of
//! Swift-Sim-Basic and Swift-Sim-Memory (multithreaded) over the detailed
//! baseline for every application on the RTX 2080 Ti.
//!
//! Paper targets: geometric means of 82.6x (Basic) and 211.2x (Memory),
//! with NW/ADI/SM/GRU exceeding 1000x under Swift-Sim-Memory.
//!
//! ```sh
//! SWIFTSIM_SCALE=paper cargo run --release -p swiftsim-bench --bin fig4_speedup
//! ```

use swiftsim_bench::{geomean_of, sweep_app_cached, Knobs};
use swiftsim_metrics::Table;

fn main() {
    let knobs = Knobs::from_env();
    let gpu = swiftsim_config::presets::rtx2080ti();
    eprintln!(
        "Fig. 4 (scatter): speedup over the detailed baseline on {} [{}]",
        gpu.name,
        knobs.describe()
    );

    let mut results = Vec::new();
    let mut t = Table::new(vec!["App", "Baseline wall s", "Basic x", "Memory x"]);
    for w in knobs.workloads() {
        eprintln!("  running {} ...", w.name);
        let r = sweep_app_cached(&gpu, &w, &knobs);
        t.row(vec![
            r.app.to_owned(),
            format!("{:.2}", r.detailed.wall.as_secs_f64()),
            format!("{:.1}", r.speedup(r.basic_mt)),
            format!("{:.1}", r.speedup(r.memory_mt)),
        ]);
        results.push(r);
    }

    println!();
    print!("{t}");
    println!();
    println!(
        "geomean speedup: swift-sim-basic {:.1}x  swift-sim-memory {:.1}x  ({} threads)",
        geomean_of(&results, |r| r.speedup(r.basic_mt)),
        geomean_of(&results, |r| r.speedup(r.memory_mt)),
        knobs.threads,
    );
    println!("paper:           swift-sim-basic 82.6x  swift-sim-memory 211.2x  (<= 50 threads)");
}
