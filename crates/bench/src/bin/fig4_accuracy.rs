//! Regenerates the bar chart of **Fig. 4**: cycle-prediction error of the
//! detailed baseline (the Accel-Sim stand-in), Swift-Sim-Basic, and
//! Swift-Sim-Memory against "real hardware" (the silicon oracle) for every
//! application on the RTX 2080 Ti.
//!
//! Paper targets: Accel-Sim mean error 20.2%, Swift-Sim-Basic 22.6%,
//! Swift-Sim-Memory 24.3%.
//!
//! ```sh
//! SWIFTSIM_SCALE=paper cargo run --release -p swiftsim-bench --bin fig4_accuracy
//! ```

use swiftsim_bench::{mean_of, sweep_app_accuracy_cached, Knobs};
use swiftsim_metrics::Table;

fn main() {
    let knobs = Knobs::from_env();
    let gpu = swiftsim_config::presets::rtx2080ti();
    eprintln!(
        "Fig. 4 (bars): prediction error on {} [{}]",
        gpu.name,
        knobs.describe()
    );

    let mut results = Vec::new();
    let mut t = Table::new(vec![
        "App",
        "HW cycles",
        "Baseline err %",
        "Basic err %",
        "Memory err %",
    ]);
    for w in knobs.workloads() {
        eprintln!("  running {} ...", w.name);
        let r = sweep_app_accuracy_cached(&gpu, &w, knobs.scale);
        t.row(vec![
            r.app.to_owned(),
            r.hardware.to_string(),
            format!("{:.1}", 100.0 * r.error(r.detailed)),
            format!("{:.1}", 100.0 * r.error(r.basic_1t)),
            format!("{:.1}", 100.0 * r.error(r.memory_1t)),
        ]);
        results.push(r);
    }

    println!();
    print!("{t}");
    println!();
    println!(
        "mean error: baseline {:.1}%  swift-sim-basic {:.1}%  swift-sim-memory {:.1}%",
        100.0 * mean_of(&results, |r| r.error(r.detailed)),
        100.0 * mean_of(&results, |r| r.error(r.basic_1t)),
        100.0 * mean_of(&results, |r| r.error(r.memory_1t)),
    );
    println!("paper:      accel-sim 20.2%  swift-sim-basic 22.6%  swift-sim-memory 24.3%");
}
