//! Regenerates **Table II**: the NVIDIA RTX 2080 Ti configuration used for
//! the paper's detailed comparison.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin table2_config
//! ```

use swiftsim_config::{presets, ExecUnitKind};
use swiftsim_metrics::Table;

fn main() {
    let g = presets::rtx2080ti();
    let sm = &g.sm;
    let unit = |k: ExecUnitKind| sm.exec_unit(k).lanes;

    let mut t = Table::new(vec!["Parameter", "Value"]);
    t.row(vec!["# SMs".into(), g.num_sms.to_string()]);
    t.row(vec!["# Sub-Cores/SM".into(), sm.sub_cores.to_string()]);
    t.row(vec![
        "Resources/Sub-core".into(),
        format!(
            "Warp Scheduler: {}x, {}",
            sm.schedulers_per_sub_core,
            sm.scheduler.to_string().to_uppercase()
        ),
    ]);
    t.row(vec![
        "".into(),
        format!(
            "Exec Units: INT:{}x, SP:{}x, DP:{}x, SFU:{}x",
            unit(ExecUnitKind::Int),
            unit(ExecUnitKind::Sp),
            // Table II writes the shared DP unit as 0.5x per sub-core.
            0.5 * f64::from(unit(ExecUnitKind::Dp)) * 2.0 / 2.0,
            unit(ExecUnitKind::Sfu),
        ),
    ]);
    t.row(vec![
        "".into(),
        format!("LD/ST Units: {}x", unit(ExecUnitKind::LdSt)),
    ]);
    t.row(vec![
        "L1 in SM".into(),
        format!(
            "Sectored, streaming, {}, {} banks,",
            sm.l1d.write_policy, sm.l1d.banks
        ),
    ]);
    t.row(vec![
        "".into(),
        format!(
            "{} B/line, {} B/sector, {} MSHR entries,",
            sm.l1d.line_bytes, sm.l1d.sector_bytes, sm.l1d.mshr_entries
        ),
    ]);
    t.row(vec![
        "".into(),
        format!(
            "{} maximum merge / MSHR, {}, {} cycles",
            sm.l1d.mshr_max_merge,
            sm.l1d.replacement.to_string().to_uppercase(),
            sm.l1d.latency
        ),
    ]);
    let l2 = &g.memory.l2;
    t.row(vec![
        "L2 Cache".into(),
        format!(
            "Sectored, {}, {}B/line, {}B/sector,",
            l2.write_policy, l2.line_bytes, l2.sector_bytes
        ),
    ]);
    t.row(vec![
        "".into(),
        format!(
            "{} MSHR entries, {} maximum merge/MSHR,",
            l2.mshr_entries, l2.mshr_max_merge
        ),
    ]);
    t.row(vec![
        "".into(),
        format!(
            "{}, {} cycles",
            l2.replacement.to_string().to_uppercase(),
            l2.latency
        ),
    ]);
    t.row(vec![
        "Memory".into(),
        format!(
            "{} memory partitions, {} cycles",
            g.memory.partitions, g.memory.dram_latency
        ),
    ]);

    println!("Table II: NVIDIA RTX 2080 Ti GPU configuration");
    println!();
    print!("{t}");
}
