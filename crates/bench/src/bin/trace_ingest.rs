//! Trace-ingestion benchmark: eager whole-file loading vs streaming
//! per-kernel decode over the same chunked binary trace.
//!
//! Generates a multi-kernel synthetic application of ≥ 1M instructions,
//! writes it as a chunked `.sstraceb` file, then measures each ingestion
//! mode **in its own child process** (peak RSS — `VmHWM` in
//! `/proc/self/status` — is a per-process high-water mark, so the two
//! modes cannot share one). The driver checks that both modes predict
//! bit-identical cycles and writes the comparison to
//! `BENCH_trace_ingest.json`.
//!
//! ```sh
//! cargo run --release -p swiftsim-bench --bin trace_ingest
//! SWIFTSIM_INGEST_INSTS=4000000 cargo run --release -p swiftsim-bench --bin trace_ingest
//! ```

use std::time::Instant;
use swiftsim_core::{GpuSimulator, RunOptions, SimulatorPreset};
use swiftsim_trace::{ApplicationTrace, ChunkedTraceSource};

const MODE_ENV: &str = "SWIFTSIM_INGEST_MODE";
const TRACE_ENV: &str = "SWIFTSIM_INGEST_TRACE";

fn small_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = swiftsim_config::presets::rtx2080ti();
    cfg.num_sms = 8;
    cfg.memory.partitions = 4;
    cfg
}

/// Peak resident set of this process in KiB (`VmHWM`), or 0 when
/// `/proc/self/status` is unavailable (non-Linux hosts).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|v| v.trim().trim_end_matches("kB").trim().parse().ok())
        .unwrap_or(0)
}

/// Child process: run one ingestion mode and report measurements on stdout
/// as `key=value` lines.
fn run_child(mode: &str, path: &str) {
    let sim = GpuSimulator::try_new(
        small_gpu(),
        &RunOptions::default().with_preset(SimulatorPreset::SwiftBasic),
    )
    .expect("valid config");

    let t0 = Instant::now();
    let result = match mode {
        "eager" => {
            let app = ApplicationTrace::read_binary_file(path).expect("read trace");
            sim.run(&app).expect("eager run")
        }
        "streaming" => {
            let source = ChunkedTraceSource::open(path).expect("open trace");
            sim.run(&source).expect("streaming run")
        }
        other => panic!("unknown ingest mode {other:?}"),
    };
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;

    println!("cycles={}", result.cycles);
    println!("insts={}", result.instructions());
    println!("wall_ms={wall_ms:.1}");
    println!("peak_rss_kb={}", peak_rss_kb());
}

#[derive(Debug)]
struct Measurement {
    cycles: u64,
    insts: u64,
    wall_ms: f64,
    peak_rss_kb: u64,
}

/// Spawn this binary again in one ingestion mode and parse its report.
fn measure(mode: &str, path: &std::path::Path) -> Measurement {
    let exe = std::env::current_exe().expect("own executable path");
    let out = std::process::Command::new(exe)
        .env(MODE_ENV, mode)
        .env(TRACE_ENV, path)
        .output()
        .expect("spawn ingest child");
    assert!(
        out.status.success(),
        "{mode} child failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let field = |key: &str| -> f64 {
        stdout
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{key}=")))
            .unwrap_or_else(|| panic!("{mode} child did not report {key}: {stdout}"))
            .parse()
            .expect("numeric field")
    };
    Measurement {
        cycles: field("cycles") as u64,
        insts: field("insts") as u64,
        wall_ms: field("wall_ms"),
        peak_rss_kb: field("peak_rss_kb") as u64,
    }
}

fn main() {
    // Child mode: one measured run, then exit.
    if let Ok(mode) = std::env::var(MODE_ENV) {
        let path = std::env::var(TRACE_ENV).expect("trace path env");
        run_child(&mode, &path);
        return;
    }

    let target: u64 = std::env::var("SWIFTSIM_INGEST_INSTS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1_200_000);

    eprintln!("generating ingest-stress app (>= {target} instructions) ...");
    let app = swiftsim_workloads::ingest_stress_app(target);
    let insts = app.num_insts();
    let dir = std::env::temp_dir().join(format!("swiftsim-ingest-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join("ingest.sstraceb");
    app.write_binary_file(&path).expect("write trace");
    let file_bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    drop(app); // the children load it themselves

    eprintln!(
        "trace: {insts} instructions, {file_bytes} bytes on disk at {}",
        path.display()
    );
    eprintln!("measuring eager ingestion ...");
    let eager = measure("eager", &path);
    eprintln!("measuring streaming ingestion ...");
    let streaming = measure("streaming", &path);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(
        eager.cycles, streaming.cycles,
        "eager and streaming ingestion must predict identical cycles"
    );
    assert_eq!(eager.insts, streaming.insts);

    let rss_ratio = streaming.peak_rss_kb as f64 / eager.peak_rss_kb.max(1) as f64;
    let wall_ratio = streaming.wall_ms / eager.wall_ms.max(0.001);

    let json = format!(
        "{{\n  \"bench\": \"trace_ingest\",\n  \"instructions\": {insts},\n  \"trace_bytes\": {file_bytes},\n  \"cycles\": {},\n  \"eager\": {{ \"wall_ms\": {:.1}, \"peak_rss_kb\": {} }},\n  \"streaming\": {{ \"wall_ms\": {:.1}, \"peak_rss_kb\": {} }},\n  \"streaming_rss_ratio\": {rss_ratio:.3},\n  \"streaming_wall_ratio\": {wall_ratio:.3}\n}}\n",
        eager.cycles, eager.wall_ms, eager.peak_rss_kb, streaming.wall_ms, streaming.peak_rss_kb,
    );
    let out_path =
        std::env::var("SWIFTSIM_INGEST_OUT").unwrap_or_else(|_| "BENCH_trace_ingest.json".into());
    std::fs::write(&out_path, &json).expect("write bench json");

    println!("{json}");
    println!(
        "streaming peak RSS is {:.0}% of eager; wall time is {:.0}% of eager ({out_path})",
        rss_ratio * 100.0,
        wall_ratio * 100.0
    );
    if eager.peak_rss_kb > 0 && rss_ratio > 0.6 {
        eprintln!("WARNING: streaming RSS above the 60% target");
    }
}
