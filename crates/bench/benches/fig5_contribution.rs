//! Criterion companion to Fig. 5: isolates each speedup contribution —
//! the analytical ALU model, the analytical memory model, and parallel
//! simulation — on one memory-bound workload.

use criterion::{criterion_group, criterion_main, Criterion};
use swiftsim_core::{
    AluModelKind, FidelityConfig, FrontendModelKind, GpuSimulator, MemoryModelKind, RunOptions,
    SkipPolicy,
};
use swiftsim_workloads::Scale;

fn fidelity(
    alu: AluModelKind,
    memory: MemoryModelKind,
    frontend: FrontendModelKind,
    skip_policy: SkipPolicy,
) -> FidelityConfig {
    FidelityConfig {
        alu,
        memory,
        frontend,
        skip_policy,
        ..FidelityConfig::default()
    }
}

fn small_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = swiftsim_config::presets::rtx2080ti();
    cfg.num_sms = 17;
    cfg.memory.partitions = 6;
    cfg
}

fn bench_contributions(c: &mut Criterion) {
    let gpu = small_gpu();
    let app = swiftsim_workloads::by_name("nw")
        .expect("workload")
        .generate(Scale::Small);

    let mut group = c.benchmark_group("fig5_contributions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.measurement_time(std::time::Duration::from_secs(10));

    let cases: Vec<(&str, RunOptions)> = vec![
        (
            "baseline_detailed",
            RunOptions::default().with_fidelity(fidelity(
                AluModelKind::CycleAccurate,
                MemoryModelKind::CycleAccurate,
                FrontendModelKind::Detailed,
                SkipPolicy::Dense,
            )),
        ),
        (
            "analytical_alu",
            RunOptions::default().with_fidelity(fidelity(
                AluModelKind::Analytical,
                MemoryModelKind::CycleAccurate,
                FrontendModelKind::Simplified,
                SkipPolicy::EventDriven,
            )),
        ),
        (
            "analytical_alu_and_memory",
            RunOptions::default().with_fidelity(fidelity(
                AluModelKind::Analytical,
                MemoryModelKind::Analytical,
                FrontendModelKind::Simplified,
                SkipPolicy::EventDriven,
            )),
        ),
        (
            "analytical_all_parallel4",
            RunOptions::default()
                .with_fidelity(fidelity(
                    AluModelKind::Analytical,
                    MemoryModelKind::Analytical,
                    FrontendModelKind::Simplified,
                    SkipPolicy::EventDriven,
                ))
                .with_threads(4),
        ),
    ];
    for (label, options) in cases {
        let sim = GpuSimulator::try_new(gpu.clone(), &options).expect("bench simulator");
        group.bench_function(label, |b| {
            b.iter(|| sim.run(&app).expect("bench run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contributions);
criterion_main!(benches);
