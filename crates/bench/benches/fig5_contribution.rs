//! Criterion companion to Fig. 5: isolates each speedup contribution —
//! the analytical ALU model, the analytical memory model, and parallel
//! simulation — on one memory-bound workload.

use criterion::{criterion_group, criterion_main, Criterion};
use swiftsim_core::{AluModelKind, MemoryModelKind, SimulatorBuilder, SkipPolicy};
use swiftsim_workloads::Scale;

fn small_gpu() -> swiftsim_config::GpuConfig {
    let mut cfg = swiftsim_config::presets::rtx2080ti();
    cfg.num_sms = 17;
    cfg.memory.partitions = 6;
    cfg
}

fn bench_contributions(c: &mut Criterion) {
    let gpu = small_gpu();
    let app = swiftsim_workloads::by_name("nw")
        .expect("workload")
        .generate(Scale::Small);

    let mut group = c.benchmark_group("fig5_contributions");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.measurement_time(std::time::Duration::from_secs(10));

    let cases: Vec<(&str, SimulatorBuilder)> = vec![
        (
            "baseline_detailed",
            SimulatorBuilder::new(gpu.clone())
                .alu_model(AluModelKind::CycleAccurate)
                .memory_model(MemoryModelKind::CycleAccurate)
                .frontend_detailed(true)
                .skip_policy(SkipPolicy::Dense),
        ),
        (
            "analytical_alu",
            SimulatorBuilder::new(gpu.clone())
                .alu_model(AluModelKind::Analytical)
                .memory_model(MemoryModelKind::CycleAccurate)
                .frontend_detailed(false)
                .skip_policy(SkipPolicy::EventDriven),
        ),
        (
            "analytical_alu_and_memory",
            SimulatorBuilder::new(gpu.clone())
                .alu_model(AluModelKind::Analytical)
                .memory_model(MemoryModelKind::Analytical)
                .frontend_detailed(false)
                .skip_policy(SkipPolicy::EventDriven),
        ),
        (
            "analytical_all_parallel4",
            SimulatorBuilder::new(gpu.clone())
                .alu_model(AluModelKind::Analytical)
                .memory_model(MemoryModelKind::Analytical)
                .frontend_detailed(false)
                .skip_policy(SkipPolicy::EventDriven)
                .threads(4),
        ),
    ];
    for (label, builder) in cases {
        let sim = builder.build();
        group.bench_function(label, |b| {
            b.iter(|| sim.run(&app).expect("bench run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contributions);
criterion_main!(benches);
