//! Criterion companion to the Fig. 4 scatter plot: wall-clock cost of the
//! three simulator presets on representative workloads. The `fig4_speedup`
//! binary measures the full suite at paper scale; this bench gives
//! statistically rigorous timings on a fast subset so preset-relative
//! performance regressions are caught in CI.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use swiftsim_core::{GpuSimulator, RunOptions, SimulatorPreset};
use swiftsim_workloads::Scale;

fn small_gpu() -> swiftsim_config::GpuConfig {
    // A quarter of the RTX 2080 Ti keeps Criterion's repeated runs fast
    // while preserving per-SM ratios.
    let mut cfg = swiftsim_config::presets::rtx2080ti();
    cfg.num_sms = 17;
    cfg.memory.partitions = 6;
    cfg
}

fn bench_presets(c: &mut Criterion) {
    let gpu = small_gpu();
    let mut group = c.benchmark_group("fig4_presets");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(2));
    group.measurement_time(std::time::Duration::from_secs(10));
    for app_name in ["nw", "bfs", "gemm"] {
        let app = swiftsim_workloads::by_name(app_name)
            .expect("workload")
            .generate(Scale::Small);
        for (label, preset) in [
            ("detailed", SimulatorPreset::Detailed),
            ("swift_basic", SimulatorPreset::SwiftBasic),
            ("swift_memory", SimulatorPreset::SwiftMemory),
        ] {
            group.bench_with_input(BenchmarkId::new(label, app_name), &app, |b, app| {
                let options = RunOptions::default().with_preset(preset);
                let sim = GpuSimulator::try_new(gpu.clone(), &options).expect("bench simulator");
                b.iter(|| sim.run(app).expect("bench run"));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_presets);
criterion_main!(benches);
