//! Micro-benchmarks of the substrate modules: sector cache, coalescer,
//! reuse-distance analyzer, and interconnect. These guard the hot paths
//! the whole-simulator benchmarks sit on.

use criterion::{criterion_group, criterion_main, Criterion};
use swiftsim_config::presets;
use swiftsim_mem::{
    coalesce_accesses, AccessOutcome, AddressMapping, MemTxn, ReuseDistanceAnalyzer, SectorCache,
};
use swiftsim_noc::{Crossbar, Interconnect};

fn bench_sector_cache(c: &mut Criterion) {
    let cfg = presets::rtx2080ti().sm.l1d;
    c.bench_function("sector_cache_access_hit", |b| {
        let mut cache = SectorCache::new(&cfg, 0);
        let txn = MemTxn {
            line_addr: 0x1000,
            sector_mask: 0b0001,
            write: false,
        };
        // Warm the line.
        if let AccessOutcome::Miss { .. } = cache.access(txn, 0, 0) {
            cache.fill(0x1000, 10);
        }
        let mut now = 100u64;
        b.iter(|| {
            now += 2;
            std::hint::black_box(cache.access(txn, now, now))
        });
    });

    c.bench_function("sector_cache_miss_fill_cycle", |b| {
        let mut cache = SectorCache::new(&cfg, 0);
        let mut now = 0u64;
        let mut line = 0u64;
        b.iter(|| {
            now += 10;
            line += 0x80;
            let txn = MemTxn {
                line_addr: line,
                sector_mask: 0b0001,
                write: false,
            };
            if let AccessOutcome::Miss { fetch, .. } = cache.access(txn, now, now) {
                std::hint::black_box(cache.fill(fetch.line_addr, now + 200));
            }
        });
    });
}

fn bench_coalescer(c: &mut Criterion) {
    let mapping = AddressMapping::new(&presets::rtx2080ti().sm.l1d);
    let coalesced: Vec<u64> = (0..32).map(|i| 0x2000 + i * 4).collect();
    let divergent: Vec<u64> = (0..32).map(|i| 0x10_0000 + i * 4096).collect();
    c.bench_function("coalesce_unit_stride", |b| {
        b.iter(|| std::hint::black_box(coalesce_accesses(&mapping, &coalesced, 4, false)));
    });
    c.bench_function("coalesce_fully_divergent", |b| {
        b.iter(|| std::hint::black_box(coalesce_accesses(&mapping, &divergent, 4, false)));
    });
}

fn bench_reuse_distance(c: &mut Criterion) {
    c.bench_function("reuse_distance_record", |b| {
        let mut rd = ReuseDistanceAnalyzer::new();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(rd.record(i % 4096))
        });
    });
}

fn bench_noc(c: &mut Criterion) {
    let cfg = presets::rtx2080ti();
    c.bench_function("crossbar_traverse", |b| {
        let mut x = Crossbar::new(&cfg.noc, 68, 22);
        let mut now = 0u64;
        let mut i = 0usize;
        b.iter(|| {
            now += 1;
            i += 1;
            std::hint::black_box(x.traverse(i % 68, i % 22, 1, now))
        });
    });
}

criterion_group!(
    benches,
    bench_sector_cache,
    bench_coalescer,
    bench_reuse_distance,
    bench_noc
);
criterion_main!(benches);
