//! Serve-side observability: the trace multiplexer that merges queue
//! spans, task spans, and per-executor profiler frames into one Perfetto
//! timeline, plus failure classification for the flight recorder.
//!
//! Trace layout: the coordinator is process 1 — thread 0 is the queue row
//! (one span per task from enqueue to dispatch), and every executor that
//! completed a task gets its own thread row with one span per task from
//! dispatch to completion. Every executor that shipped back a
//! [`ProfileReport`] (remote workers via `task-result`, local slots
//! directly) becomes its own *process*, carrying the full per-module
//! profiler tracks of [`ProfileReport::chrome_events`]. All spans carry
//! `run` (submission id) and `task` (task index) args, so one distributed
//! sweep can be followed across the queue, the dispatching coordinator,
//! and the worker that simulated it — one consistent trace context
//! end-to-end.
//!
//! Remote clocks: worker frames are timestamped against the *worker's*
//! profiler epoch. [`TraceMux::executor_report`] rebases them into the
//! coordinator timeline by centering the report's span inside the
//! dispatch→receive window observed on the coordinator (the classic
//! half-RTT assumption; with symmetric network delay the placement error
//! is bounded by the RTT asymmetry).

use std::collections::BTreeMap;
use std::sync::Mutex;
use std::time::Instant;
use swiftsim_metrics::{Json, ProfileReport};

/// Classify a rendered failure string for the flight recorder.
///
/// Returns `Some("deadlock")` for modeling deadlocks (matched via
/// [`swiftsim_core::DEADLOCK_MARKER`]), `Some("panic")` for captured
/// panics (the campaign executor surfaces them as `panic: ...`; shard
/// panics render as `worker panicked in ...`), `None` otherwise.
pub fn failure_kind(error: &str) -> Option<&'static str> {
    if error.contains(swiftsim_core::DEADLOCK_MARKER) {
        Some("deadlock")
    } else if error.starts_with("panic: ") || error.contains("panicked") {
        Some("panic")
    } else {
        None
    }
}

/// The coordinator's process id in the merged trace.
const COORD_PID: u64 = 1;
/// The queue row's thread id within the coordinator process.
const QUEUE_TID: u64 = 0;

struct MuxState {
    events: Vec<Json>,
    /// Executor label → trace process id (2+) for shipped profiler tracks.
    pids: BTreeMap<String, u64>,
    /// Executor label → coordinator thread row (1+) for task spans.
    tids: BTreeMap<String, u64>,
}

/// Accumulates one merged Chrome trace for a whole serve session.
///
/// All methods are safe to call from any thread; event order within the
/// document is arrival order (Perfetto sorts by timestamp anyway).
pub struct TraceMux {
    epoch: Instant,
    state: Mutex<MuxState>,
}

impl TraceMux {
    /// A new multiplexer; its creation instant is time zero of the trace.
    pub fn new() -> TraceMux {
        TraceMux {
            epoch: Instant::now(),
            state: Mutex::new(MuxState {
                events: Vec::new(),
                pids: BTreeMap::new(),
                tids: BTreeMap::new(),
            }),
        }
    }

    fn ns_of(&self, t: Instant) -> u64 {
        t.saturating_duration_since(self.epoch)
            .as_nanos()
            .min(u64::MAX as u128) as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MuxState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Record the queue-wait span of one task: it sat queued for `wait_ns`
    /// and was handed to `executor` at `dispatched`.
    pub fn queue_span(
        &self,
        run: u64,
        task: usize,
        label: &str,
        wait_ns: u64,
        dispatched: Instant,
        executor: &str,
    ) {
        let end = self.ns_of(dispatched);
        let start = end.saturating_sub(wait_ns);
        let event = span_event(
            &format!("r{run}:t{task} {label}"),
            "queue",
            COORD_PID,
            QUEUE_TID,
            start,
            end - start,
            vec![
                ("run", Json::int(run)),
                ("task", Json::int(task as u64)),
                ("executor", Json::str(executor)),
            ],
        );
        self.lock().events.push(event);
    }

    /// Record one task's execution span on `executor`'s coordinator row,
    /// from dispatch to completion (local) or result receipt (remote).
    pub fn task_span(
        &self,
        run: u64,
        task: usize,
        label: &str,
        executor: &str,
        start: Instant,
        end: Instant,
    ) {
        let start_ns = self.ns_of(start);
        let dur_ns = self.ns_of(end).saturating_sub(start_ns);
        let mut state = self.lock();
        let next = state.tids.len() as u64 + 1;
        let tid = *state.tids.entry(executor.to_owned()).or_insert(next);
        let event = span_event(
            &format!("r{run}:t{task} {label}"),
            "task",
            COORD_PID,
            tid,
            start_ns,
            dur_ns,
            vec![
                ("run", Json::int(run)),
                ("task", Json::int(task as u64)),
                ("executor", Json::str(executor)),
            ],
        );
        state.events.push(event);
    }

    /// Merge an executor's profiler track for one task into the timeline,
    /// as its own trace process named after `executor`.
    ///
    /// `dispatched`/`received` bound the task on the *coordinator's*
    /// clock; the report's own timestamps (relative to the executor's
    /// profiler epoch) are rebased by centering its span inside that
    /// window.
    pub fn executor_report(
        &self,
        executor: &str,
        run: u64,
        task: usize,
        report: &ProfileReport,
        dispatched: Instant,
        received: Instant,
    ) {
        let dispatch_ns = self.ns_of(dispatched);
        let window = self.ns_of(received).saturating_sub(dispatch_ns);
        let slack = window.saturating_sub(report.span_ns());
        let offset = dispatch_ns + slack / 2;
        let args = [
            ("run", Json::int(run)),
            ("task", Json::int(task as u64)),
            ("executor", Json::str(executor)),
        ];
        let mut state = self.lock();
        let next = state.pids.len() as u64 + 2;
        let pid = *state.pids.entry(executor.to_owned()).or_insert(next);
        state
            .events
            .extend(report.chrome_events(pid, offset, &args));
    }

    /// Number of events accumulated so far (metadata not included).
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the merged Chrome trace document: all accumulated events
    /// plus process/thread naming metadata.
    pub fn to_chrome_json(&self) -> Json {
        let state = self.lock();
        let mut events = state.events.clone();
        events.push(meta_event("process_name", COORD_PID, None, "coordinator"));
        events.push(meta_event(
            "thread_name",
            COORD_PID,
            Some(QUEUE_TID),
            "queue",
        ));
        for (label, tid) in &state.tids {
            events.push(meta_event("thread_name", COORD_PID, Some(*tid), label));
        }
        for (label, pid) in &state.pids {
            events.push(meta_event("process_name", *pid, None, label));
        }
        Json::obj(vec![
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::str("ms")),
        ])
    }
}

impl Default for TraceMux {
    fn default() -> Self {
        TraceMux::new()
    }
}

fn span_event(
    name: &str,
    cat: &str,
    pid: u64,
    tid: u64,
    start_ns: u64,
    dur_ns: u64,
    args: Vec<(&str, Json)>,
) -> Json {
    Json::obj(vec![
        ("ph", Json::str("X")),
        ("name", Json::str(name)),
        ("cat", Json::str(cat)),
        ("pid", Json::Num(pid as f64)),
        ("tid", Json::Num(tid as f64)),
        ("ts", Json::Num(start_ns as f64 / 1e3)),
        ("dur", Json::Num(dur_ns as f64 / 1e3)),
        ("args", Json::obj(args)),
    ])
}

fn meta_event(kind: &str, pid: u64, tid: Option<u64>, name: &str) -> Json {
    let mut fields = vec![
        ("ph", Json::str("M")),
        ("name", Json::str(kind)),
        ("pid", Json::Num(pid as f64)),
    ];
    if let Some(tid) = tid {
        fields.push(("tid", Json::Num(tid as f64)));
    }
    fields.push(("args", Json::obj(vec![("name", Json::str(name))])));
    Json::obj(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_metrics::{ProfFrame, ProfModule};

    #[test]
    fn failure_kind_classifies_real_error_strings() {
        let deadlock = swiftsim_core::SimError::Deadlock {
            cycle: 7,
            shard: 0,
            detail: "SM 0 warp 1 at barrier".to_owned(),
        };
        assert_eq!(failure_kind(&deadlock.to_string()), Some("deadlock"));
        // The campaign executor's catch_unwind surfaces panics like this.
        assert_eq!(failure_kind("panic: index out of bounds"), Some("panic"));
        let shard_panic = swiftsim_core::SimError::WorkerPanic {
            context: "shard 3".to_owned(),
            message: "boom".to_owned(),
        };
        assert_eq!(failure_kind(&shard_panic.to_string()), Some("panic"));
        assert_eq!(failure_kind("trace ingestion failed: bad magic"), None);
    }

    #[test]
    fn mux_merges_coordinator_and_executor_tracks() {
        let mux = TraceMux::new();
        let t0 = Instant::now();
        mux.queue_span(3, 1, "nw/tiny", 5_000, t0, "remote-0-w");
        mux.task_span(3, 1, "nw/tiny", "remote-0-w", t0, t0);
        let frame = ProfFrame::from_parts("k0:nw", 0, 0, 1_000, &[(ProfModule::Alu, 400, 4, 1)]);
        let report = ProfileReport {
            frames: vec![frame],
        };
        mux.executor_report("remote-0-w", 3, 1, &report, t0, t0);

        let doc = mux.to_chrome_json();
        let parsed = Json::parse(&doc.dump()).unwrap();
        let events = parsed.get("traceEvents").unwrap().as_arr().unwrap();
        // Coordinator spans live on pid 1; the worker's profiler frames on
        // their own pid — and both carry the same run/task context.
        let runs_on = |pid: u64| {
            events.iter().any(|e| {
                e.get("pid").and_then(Json::as_u64) == Some(pid)
                    && e.get("args")
                        .and_then(|a| a.get("run"))
                        .and_then(Json::as_u64)
                        == Some(3)
                    && e.get("args")
                        .and_then(|a| a.get("task"))
                        .and_then(Json::as_u64)
                        == Some(1)
            })
        };
        assert!(runs_on(1), "coordinator spans carry the trace context");
        assert!(runs_on(2), "worker frames carry the trace context");
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
            .filter_map(|e| {
                e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
            })
            .collect();
        assert!(names.contains(&"coordinator"), "{names:?}");
        assert!(names.contains(&"queue"), "{names:?}");
        assert!(names.contains(&"remote-0-w"), "{names:?}");
    }

    #[test]
    fn executor_report_centers_frames_in_the_observed_window() {
        let mux = TraceMux::new();
        let dispatched = Instant::now();
        // A 1µs-span report inside a window observed later; the rebased
        // timestamp must be >= the dispatch time.
        let frame = ProfFrame::from_parts("k0", 0, 0, 1_000, &[(ProfModule::Alu, 1_000, 1, 1)]);
        let report = ProfileReport {
            frames: vec![frame],
        };
        std::thread::sleep(std::time::Duration::from_millis(5));
        mux.executor_report("w", 1, 0, &report, dispatched, Instant::now());
        let doc = mux.to_chrome_json();
        let dispatch_us = mux.ns_of(dispatched) as f64 / 1e3;
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let frame_ev = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("frame"))
            .unwrap();
        let ts = frame_ev.get("ts").unwrap().as_f64().unwrap();
        assert!(
            ts >= dispatch_us,
            "frame at {ts}µs before dispatch {dispatch_us}µs"
        );
    }
}
