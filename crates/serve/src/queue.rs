//! The async job queue: submissions, per-task scheduling, lifecycle
//! states, fairness, and drain.
//!
//! A *submission* (one `submit` request — a whole sweep or a single run)
//! expands into one **task per simulation**. Tasks, not submissions, are
//! the scheduling unit: a 100-job sweep from one client does not block a
//! single-run request from another, because the scheduler hands out tasks
//! **round-robin across clients** — each dispatch goes to the next client
//! in rotation that has runnable work. Within one client, higher
//! `priority` tasks go first; ties break by submission order then task
//! index, so scheduling is deterministic given a dispatch order.
//!
//! Lifecycle: every task is `queued` → `running` → terminal
//! (`done`/`failed`/`cancelled`), and a submission's state is derived
//! from its tasks. Cancellation is cooperative and task-granular
//! (matching [`swiftsim_campaign::CancelToken`]): queued tasks die
//! immediately, running tasks finish and keep their result.
//!
//! The queue is executor-agnostic: local worker threads and remote worker
//! connections both pull from [`JobQueue::next_task`] and push through
//! [`JobQueue::complete`]. Remote failure splits into two independently
//! counted, independently capped budgets:
//!
//! * **Infrastructure losses** — the executor vanished (connection drop,
//!   lease expiry) and said nothing about the job itself. These go through
//!   [`JobQueue::requeue`], bounded by `max_losses`.
//! * **Execution failures** — a live worker ran the job and reported a
//!   real error. These go through [`JobQueue::grant_retry`], bounded by
//!   `max_exec_retries`.
//!
//! Keeping the two counters separate means a sweep on flaky workers
//! cannot silently burn a task's execution-retry budget on connection
//! drops (nor the reverse), and a task that ultimately fails does so with
//! the right diagnosis: the real execution error when the job is bad, an
//! executor-loss message when the fleet is.

use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use swiftsim_campaign::{CampaignReport, CancelToken, JobOutcome, JobStatus, ResolvedJob};

/// One schedulable simulation, leased to whichever executor claimed it.
#[derive(Debug, Clone)]
pub struct LeasedTask {
    /// The owning submission.
    pub submission: u64,
    /// Task index within the submission (== `job.spec.index`).
    pub index: usize,
    /// The resolved job to execute.
    pub job: ResolvedJob,
    /// The submission's cancel token; executors pass it to the runner.
    pub cancel: CancelToken,
    /// How long the task sat queued before this dispatch (since submission,
    /// or since its latest requeue).
    pub queue_wait: Duration,
}

/// One lease that [`JobQueue::requeue_executor`] or
/// [`JobQueue::reap_expired`] took back, so the caller can log and trace
/// exactly which run/task was affected and whether it got another chance.
#[derive(Debug, Clone)]
pub struct RequeuedLease {
    /// The owning submission.
    pub submission: u64,
    /// Task index within the submission.
    pub index: usize,
    /// Task label (for logs).
    pub label: String,
    /// The executor that held the lease.
    pub executor: String,
    /// Whether the task was queued again (`false`: its loss budget is
    /// spent and it was failed).
    pub requeued: bool,
}

/// What [`JobQueue::next_task`] returned.
#[derive(Debug)]
pub enum Dispatch {
    /// A task to execute.
    Task(Box<LeasedTask>),
    /// Nothing runnable before the deadline; poll again.
    Idle,
    /// The queue is draining and has nothing left to hand out — executors
    /// should exit.
    Drain,
}

#[derive(Debug)]
enum TaskState {
    Queued,
    Running { executor: String, since: Instant },
    Terminal(Box<JobOutcome>),
}

#[derive(Debug)]
struct Task {
    job: ResolvedJob,
    state: TaskState,
    /// When the task last became `Queued` (submission or latest requeue);
    /// the base of the queue-wait latency reported on dispatch.
    enqueued: Instant,
    /// Times this task was requeued after losing its executor
    /// (infrastructure: connection drops, lease expiries). Counted
    /// separately from `exec_failures` so flaky workers cannot exhaust a
    /// task's execution-retry budget.
    losses: u32,
    /// Times a live worker ran this task and reported a real execution
    /// failure.
    exec_failures: u32,
}

/// Tasks per lifecycle state, across all submissions — the per-state
/// breakdown a `stats` endpoint reports next to the flat queue depth.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaskStateCounts {
    /// Waiting for an executor.
    pub queued: usize,
    /// Leased to an executor.
    pub running: usize,
    /// Finished with a fresh result.
    pub completed: usize,
    /// Finished from cache (disk or warm).
    pub cached: usize,
    /// Finished with an error.
    pub failed: usize,
    /// Cancelled before running.
    pub cancelled: usize,
}

struct Submission {
    id: u64,
    name: String,
    client: String,
    priority: u64,
    seq: u64,
    cancel: CancelToken,
    tasks: Vec<Task>,
}

/// A submission's externally visible state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmissionState {
    /// No task has started.
    Queued,
    /// At least one task is running or finished, and some remain.
    Running,
    /// Every task finished, none failed or was cancelled.
    Done,
    /// Every task finished and at least one failed.
    Failed,
    /// Every task finished, none failed, at least one was cancelled.
    Cancelled,
}

impl SubmissionState {
    /// Lower-case protocol name.
    pub fn name(self) -> &'static str {
        match self {
            SubmissionState::Queued => "queued",
            SubmissionState::Running => "running",
            SubmissionState::Done => "done",
            SubmissionState::Failed => "failed",
            SubmissionState::Cancelled => "cancelled",
        }
    }

    /// Whether no further state change can happen.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            SubmissionState::Done | SubmissionState::Failed | SubmissionState::Cancelled
        )
    }
}

/// Status snapshot of one submission.
#[derive(Debug, Clone)]
pub struct SubmissionView {
    /// Submission id.
    pub id: u64,
    /// Campaign name.
    pub name: String,
    /// Submitting client.
    pub client: String,
    /// Priority it was submitted with.
    pub priority: u64,
    /// Derived lifecycle state.
    pub state: SubmissionState,
    /// Tasks in a terminal state.
    pub done: usize,
    /// Tasks currently running.
    pub running: usize,
    /// Total tasks.
    pub total: usize,
}

struct QueueState {
    submissions: HashMap<u64, Submission>,
    next_id: u64,
    next_seq: u64,
    /// Client rotation cursor: the client that was served most recently.
    last_client: Option<String>,
    draining: bool,
}

/// The shared queue. All methods are safe to call from any thread.
pub struct JobQueue {
    state: Mutex<QueueState>,
    /// Signaled on every state change: new tasks, completions, drain.
    changed: Condvar,
    /// Requeues granted to a task whose executor was lost, before the task
    /// is failed outright. Infrastructure budget only — independent of
    /// `max_exec_retries`.
    max_losses: u32,
    /// Re-runs granted to a task whose worker reported a real execution
    /// failure, before that failure becomes the task's outcome.
    max_exec_retries: u32,
}

impl JobQueue {
    /// An empty queue. A task survives `max_losses` executor losses
    /// (worker connection drops, lease expiries) and, independently,
    /// `max_exec_retries` reported execution failures before failing.
    pub fn new(max_losses: u32, max_exec_retries: u32) -> Self {
        JobQueue {
            state: Mutex::new(QueueState {
                submissions: HashMap::new(),
                next_id: 1,
                next_seq: 0,
                last_client: None,
                draining: false,
            }),
            changed: Condvar::new(),
            max_losses,
            max_exec_retries,
        }
    }

    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Enqueue a submission: one task per resolved job. Returns the
    /// submission id, or `None` when the queue is draining (new work is
    /// refused during shutdown).
    pub fn submit(
        &self,
        client: &str,
        name: &str,
        priority: u64,
        jobs: Vec<ResolvedJob>,
    ) -> Option<u64> {
        self.submit_prejudged(client, name, priority, jobs.into_iter().map(|j| (j, None)))
    }

    /// [`JobQueue::submit`], but tasks arriving with a ready outcome (a
    /// warm-cache hit judged at submit time) are born terminal and never
    /// scheduled. Judging at submit time — instead of completing the task
    /// after enqueueing it — closes the race where an executor claims the
    /// task before the warm hit lands.
    pub fn submit_prejudged(
        &self,
        client: &str,
        name: &str,
        priority: u64,
        jobs: impl IntoIterator<Item = (ResolvedJob, Option<JobOutcome>)>,
    ) -> Option<u64> {
        let mut state = self.lock();
        if state.draining {
            return None;
        }
        let id = state.next_id;
        state.next_id += 1;
        let seq = state.next_seq;
        state.next_seq += 1;
        let tasks = jobs
            .into_iter()
            .map(|(job, prejudged)| Task {
                job,
                state: match prejudged {
                    Some(outcome) => TaskState::Terminal(Box::new(outcome)),
                    None => TaskState::Queued,
                },
                enqueued: Instant::now(),
                losses: 0,
                exec_failures: 0,
            })
            .collect();
        state.submissions.insert(
            id,
            Submission {
                id,
                name: name.to_owned(),
                client: client.to_owned(),
                priority,
                seq,
                cancel: CancelToken::new(),
                tasks,
            },
        );
        drop(state);
        self.changed.notify_all();
        Some(id)
    }

    /// Claim the next runnable task for `executor`, blocking up to
    /// `deadline`.
    ///
    /// Fairness: the dispatch goes to the next client in rotation (after
    /// the most recently served one) that has runnable work. Within that
    /// client: highest priority, then oldest submission, then lowest task
    /// index.
    pub fn next_task(&self, executor: &str, deadline: Duration) -> Dispatch {
        let start = Instant::now();
        let mut state = self.lock();
        loop {
            if let Some((sub_id, index)) = pick_task(&state) {
                let sub = state.submissions.get_mut(&sub_id).expect("picked exists");
                let client = sub.client.clone();
                let cancel = sub.cancel.clone();
                let task = &mut sub.tasks[index];
                let queue_wait = task.enqueued.elapsed();
                task.state = TaskState::Running {
                    executor: executor.to_owned(),
                    since: Instant::now(),
                };
                let leased = LeasedTask {
                    submission: sub_id,
                    index,
                    job: task.job.clone(),
                    cancel,
                    queue_wait,
                };
                state.last_client = Some(client);
                return Dispatch::Task(Box::new(leased));
            }
            if state.draining {
                return Dispatch::Drain;
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return Dispatch::Idle;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(state, deadline - elapsed)
                .unwrap_or_else(|p| p.into_inner());
            state = guard;
        }
    }

    /// Record a finished task. The outcome's `index` must match the task's.
    pub fn complete(&self, submission: u64, index: usize, outcome: JobOutcome) {
        let mut state = self.lock();
        if let Some(sub) = state.submissions.get_mut(&submission) {
            debug_assert_eq!(outcome.index, index);
            sub.tasks[index].state = TaskState::Terminal(Box::new(outcome));
        }
        drop(state);
        self.changed.notify_all();
    }

    /// Return a running task to the queue (its executor was lost). After
    /// `max_losses` requeues the task is failed instead, so one bad input
    /// cannot bounce between workers forever. Returns whether the task is
    /// queued again (false: it was failed, or was not running).
    ///
    /// This is the *infrastructure* path — the executor said nothing about
    /// the job itself. Losses counted here never touch the execution-retry
    /// budget (see [`JobQueue::grant_retry`]).
    pub fn requeue(&self, submission: u64, index: usize, reason: &str) -> bool {
        let mut state = self.lock();
        let Some(sub) = state.submissions.get_mut(&submission) else {
            return false;
        };
        let label = sub.tasks[index].job.spec.label();
        let task = &mut sub.tasks[index];
        if !matches!(task.state, TaskState::Running { .. }) {
            return false;
        }
        task.losses += 1;
        let requeued = task.losses <= self.max_losses;
        if requeued {
            task.state = TaskState::Queued;
            task.enqueued = Instant::now();
        } else {
            task.state = TaskState::Terminal(Box::new(JobOutcome {
                index,
                label,
                status: JobStatus::Failed {
                    error: format!("lost executor {} times (last: {reason})", task.losses),
                },
                attempts: task.losses,
                wall: Duration::ZERO,
            }));
        }
        drop(state);
        self.changed.notify_all();
        requeued
    }

    /// A live worker ran this task and reported a real execution failure:
    /// decide whether the task gets another run. Returns `true` and
    /// requeues the task while its execution-failure count is within
    /// `max_exec_retries`; returns `false` (leaving the task `Running`,
    /// for the caller to [`JobQueue::complete`] with the real error) once
    /// the budget is spent or when the task is not running.
    ///
    /// Execution failures counted here never touch the infrastructure-loss
    /// budget (see [`JobQueue::requeue`]): a sweep on flaky workers cannot
    /// burn a task's execution retries on connection drops, nor can a
    /// genuinely failing job eat the requeues that keep it schedulable
    /// across worker churn.
    pub fn grant_retry(&self, submission: u64, index: usize) -> bool {
        let mut state = self.lock();
        let Some(sub) = state.submissions.get_mut(&submission) else {
            return false;
        };
        let task = &mut sub.tasks[index];
        if !matches!(task.state, TaskState::Running { .. }) {
            return false;
        }
        task.exec_failures += 1;
        let retried = task.exec_failures <= self.max_exec_retries;
        if retried {
            task.state = TaskState::Queued;
            task.enqueued = Instant::now();
        }
        drop(state);
        self.changed.notify_all();
        retried
    }

    /// Requeue every task currently leased to `executor` (its connection
    /// dropped). Returns the affected leases with their requeue verdicts,
    /// so the caller can attribute every loss in logs and traces.
    pub fn requeue_executor(&self, executor: &str, reason: &str) -> Vec<RequeuedLease> {
        let leased: Vec<(u64, usize, String)> = {
            let state = self.lock();
            state
                .submissions
                .values()
                .flat_map(|sub| {
                    sub.tasks
                        .iter()
                        .enumerate()
                        .filter_map(move |(i, t)| match &t.state {
                            TaskState::Running { executor: e, .. } if e == executor => {
                                Some((sub.id, i, t.job.spec.label()))
                            }
                            _ => None,
                        })
                })
                .collect()
        };
        leased
            .into_iter()
            .map(|(sub, idx, label)| RequeuedLease {
                submission: sub,
                index: idx,
                label,
                executor: executor.to_owned(),
                requeued: self.requeue(sub, idx, reason),
            })
            .collect()
    }

    /// Requeue tasks whose lease is older than `lease` and whose executor
    /// name starts with `executor_prefix`: such an executor is alive
    /// enough to hold a connection but has stopped making progress. The
    /// prefix lets the server reap only *remote* leases — a long-running
    /// local simulation is directly observable and must not be
    /// double-scheduled. Returns the expired leases with their requeue
    /// verdicts.
    pub fn reap_expired(&self, lease: Duration, executor_prefix: &str) -> Vec<RequeuedLease> {
        let expired: Vec<(u64, usize, String, String)> = {
            let state = self.lock();
            state
                .submissions
                .values()
                .flat_map(|sub| {
                    sub.tasks
                        .iter()
                        .enumerate()
                        .filter_map(move |(i, t)| match &t.state {
                            TaskState::Running { since, executor }
                                if since.elapsed() > lease
                                    && executor.starts_with(executor_prefix) =>
                            {
                                Some((sub.id, i, t.job.spec.label(), executor.clone()))
                            }
                            _ => None,
                        })
                })
                .collect()
        };
        expired
            .into_iter()
            .map(|(sub, idx, label, executor)| RequeuedLease {
                submission: sub,
                index: idx,
                label,
                executor,
                requeued: self.requeue(sub, idx, "lease expired"),
            })
            .collect()
    }

    /// Cancel a submission: its token trips (queued tasks are skipped by
    /// the executor path too), and tasks still queued here become terminal
    /// `Cancelled` immediately. Running tasks finish. Returns false for an
    /// unknown id.
    pub fn cancel(&self, submission: u64) -> bool {
        let mut state = self.lock();
        let Some(sub) = state.submissions.get_mut(&submission) else {
            return false;
        };
        sub.cancel.cancel();
        for (index, task) in sub.tasks.iter_mut().enumerate() {
            if matches!(task.state, TaskState::Queued) {
                task.state = TaskState::Terminal(Box::new(JobOutcome {
                    index,
                    label: task.job.spec.label(),
                    status: JobStatus::Cancelled,
                    attempts: 0,
                    wall: Duration::ZERO,
                }));
            }
        }
        drop(state);
        self.changed.notify_all();
        true
    }

    /// Stop accepting submissions and wake every waiter. Existing work
    /// still runs to completion (graceful drain).
    pub fn drain(&self) {
        self.lock().draining = true;
        self.changed.notify_all();
    }

    /// Whether [`JobQueue::drain`] was called.
    pub fn is_draining(&self) -> bool {
        self.lock().draining
    }

    /// Whether nothing is queued or running (during drain: safe to exit).
    pub fn is_idle(&self) -> bool {
        let state = self.lock();
        state.submissions.values().all(|sub| {
            sub.tasks
                .iter()
                .all(|t| matches!(t.state, TaskState::Terminal(_)))
        })
    }

    /// Status of one submission.
    pub fn status(&self, submission: u64) -> Option<SubmissionView> {
        let state = self.lock();
        state.submissions.get(&submission).map(view)
    }

    /// Status of every submission, ordered by id.
    pub fn list(&self) -> Vec<SubmissionView> {
        let state = self.lock();
        let mut views: Vec<SubmissionView> = state.submissions.values().map(view).collect();
        views.sort_by_key(|v| v.id);
        views
    }

    /// Tasks queued or running, across all submissions (the queue depth a
    /// stats endpoint reports).
    pub fn depth(&self) -> usize {
        let state = self.lock();
        state
            .submissions
            .values()
            .flat_map(|s| s.tasks.iter())
            .filter(|t| !matches!(t.state, TaskState::Terminal(_)))
            .count()
    }

    /// Count tasks per lifecycle state across all submissions.
    pub fn state_counts(&self) -> TaskStateCounts {
        let state = self.lock();
        let mut counts = TaskStateCounts::default();
        for task in state.submissions.values().flat_map(|s| s.tasks.iter()) {
            match &task.state {
                TaskState::Queued => counts.queued += 1,
                TaskState::Running { .. } => counts.running += 1,
                TaskState::Terminal(outcome) => match outcome.status {
                    JobStatus::Completed(_) => counts.completed += 1,
                    JobStatus::Cached(_) => counts.cached += 1,
                    JobStatus::Failed { .. } => counts.failed += 1,
                    JobStatus::Cancelled => counts.cancelled += 1,
                },
            }
        }
        counts
    }

    /// Build the finished submission's report. `None` until every task is
    /// terminal (check [`SubmissionView::state`] first).
    ///
    /// Outcomes merge deterministically regardless of which executor
    /// finished which task in which order:
    /// [`CampaignReport::from_outcomes`] matches them back to jobs by
    /// index.
    pub fn report(&self, submission: u64) -> Option<CampaignReport> {
        let state = self.lock();
        let sub = state.submissions.get(&submission)?;
        let mut jobs = Vec::with_capacity(sub.tasks.len());
        let mut outcomes = Vec::with_capacity(sub.tasks.len());
        for task in &sub.tasks {
            match &task.state {
                TaskState::Terminal(outcome) => {
                    jobs.push(task.job.clone());
                    outcomes.push(outcome.as_ref().clone());
                }
                _ => return None,
            }
        }
        Some(CampaignReport::from_outcomes(
            sub.name.clone(),
            jobs,
            outcomes,
        ))
    }

    /// Block until `submission` reaches a terminal state (or `deadline`
    /// passes — then `None`). Unknown ids return `None` immediately.
    pub fn wait_terminal(&self, submission: u64, deadline: Duration) -> Option<SubmissionState> {
        let start = Instant::now();
        let mut state = self.lock();
        loop {
            let current = view(state.submissions.get(&submission)?).state;
            if current.is_terminal() {
                return Some(current);
            }
            let elapsed = start.elapsed();
            if elapsed >= deadline {
                return None;
            }
            let (guard, _) = self
                .changed
                .wait_timeout(state, deadline - elapsed)
                .unwrap_or_else(|p| p.into_inner());
            state = guard;
        }
    }
}

fn view(sub: &Submission) -> SubmissionView {
    let total = sub.tasks.len();
    let done = sub
        .tasks
        .iter()
        .filter(|t| matches!(t.state, TaskState::Terminal(_)))
        .count();
    let running = sub
        .tasks
        .iter()
        .filter(|t| matches!(t.state, TaskState::Running { .. }))
        .count();
    let state = if done == total {
        let mut failed = false;
        let mut cancelled = false;
        for t in &sub.tasks {
            if let TaskState::Terminal(o) = &t.state {
                match o.status {
                    JobStatus::Failed { .. } => failed = true,
                    JobStatus::Cancelled => cancelled = true,
                    _ => {}
                }
            }
        }
        if failed {
            SubmissionState::Failed
        } else if cancelled {
            SubmissionState::Cancelled
        } else {
            SubmissionState::Done
        }
    } else if done == 0 && running == 0 {
        SubmissionState::Queued
    } else {
        SubmissionState::Running
    };
    SubmissionView {
        id: sub.id,
        name: sub.name.clone(),
        client: sub.client.clone(),
        priority: sub.priority,
        state,
        done,
        running,
        total,
    }
}

/// The scheduling decision. Returns `(submission, task index)`.
fn pick_task(state: &QueueState) -> Option<(u64, usize)> {
    // Best runnable task per client: (priority desc, seq asc, index asc).
    let mut per_client: HashMap<&str, (u64, u64, usize, u64)> = HashMap::new();
    for sub in state.submissions.values() {
        for (i, task) in sub.tasks.iter().enumerate() {
            if !matches!(task.state, TaskState::Queued) {
                continue;
            }
            let candidate = (sub.priority, sub.seq, i, sub.id);
            let better = match per_client.get(sub.client.as_str()) {
                None => true,
                Some(&(p, s, idx, _)) => {
                    (std::cmp::Reverse(sub.priority), sub.seq, i) < (std::cmp::Reverse(p), s, idx)
                }
            };
            if better {
                per_client.insert(sub.client.as_str(), candidate);
            }
        }
    }
    if per_client.is_empty() {
        return None;
    }

    // Round-robin: the lexicographically next client after the last one
    // served; wrap to the smallest. Client names give a stable rotation
    // order without tracking join order.
    let mut clients: Vec<&str> = per_client.keys().copied().collect();
    clients.sort_unstable();
    let chosen = match state.last_client.as_deref() {
        Some(last) => clients
            .iter()
            .find(|c| **c > last)
            .or_else(|| clients.first())
            .copied()
            .expect("non-empty"),
        None => clients[0],
    };
    let (_, _, index, sub_id) = per_client[chosen];
    Some((sub_id, index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use swiftsim_campaign::CampaignSpec;

    fn jobs(n_schedulers: usize) -> Vec<ResolvedJob> {
        let scheds = ["gto", "lrr", "two_level"][..n_schedulers].join(", ");
        CampaignSpec::parse(&format!(
            "workload = nw\nscale = tiny\npreset = swift-memory\nscheduler = {scheds}\n"
        ))
        .unwrap()
        .resolve()
        .unwrap()
    }

    fn done(task: &LeasedTask) -> JobOutcome {
        JobOutcome {
            index: task.index,
            label: task.job.spec.label(),
            status: JobStatus::Failed {
                error: "test stub".to_owned(),
            },
            attempts: 1,
            wall: Duration::ZERO,
        }
    }

    fn claim(q: &JobQueue, executor: &str) -> Box<LeasedTask> {
        match q.next_task(executor, Duration::from_secs(5)) {
            Dispatch::Task(t) => t,
            other => panic!("expected a task, got {other:?}"),
        }
    }

    #[test]
    fn lifecycle_queued_running_done() {
        let q = JobQueue::new(1, 1);
        let id = q.submit("alice", "sweep", 0, jobs(2)).unwrap();
        assert_eq!(q.status(id).unwrap().state, SubmissionState::Queued);
        assert_eq!(q.depth(), 2);

        let t0 = claim(&q, "w0");
        assert_eq!(q.status(id).unwrap().state, SubmissionState::Running);
        assert!(q.report(id).is_none(), "no report before terminal");

        q.complete(id, t0.index, done(&t0));
        let t1 = claim(&q, "w0");
        q.complete(id, t1.index, done(&t1));

        let v = q.status(id).unwrap();
        assert_eq!(v.done, 2);
        assert_eq!(v.state, SubmissionState::Failed, "stub outcomes fail");
        assert_eq!(q.depth(), 0);
        assert!(q.is_idle());
        let report = q.report(id).unwrap();
        assert_eq!(report.rows.len(), 2);
        assert_eq!(
            q.wait_terminal(id, Duration::ZERO),
            Some(SubmissionState::Failed)
        );
    }

    #[test]
    fn round_robin_across_clients_priority_within() {
        let q = JobQueue::new(1, 1);
        // alice floods the queue first; bob submits one task, low and one
        // high priority.
        let a = q.submit("alice", "flood", 0, jobs(3)).unwrap();
        let b_low = q.submit("bob", "low", 0, jobs(1)).unwrap();
        let b_high = q.submit("bob", "high", 9, jobs(1)).unwrap();

        // Dispatch order: clients alternate; bob's high-priority submission
        // beats his earlier low-priority one.
        let owners: Vec<u64> = (0..5)
            .map(|_| {
                let t = claim(&q, "w");
                let sub = t.submission;
                q.complete(sub, t.index, done(&t));
                sub
            })
            .collect();
        assert_eq!(owners[0], a, "alphabetical start: alice first");
        assert_eq!(owners[1], b_high, "bob's turn serves his priority-9 job");
        assert_eq!(owners[2], a);
        assert_eq!(owners[3], b_low, "bob's queue drains high before low");
        assert_eq!(owners[4], a);
    }

    #[test]
    fn cancel_skips_queued_keeps_running() {
        let q = JobQueue::new(1, 1);
        let id = q.submit("c", "s", 0, jobs(3)).unwrap();
        let running = claim(&q, "w");
        assert!(q.cancel(id));
        assert!(running.cancel.is_cancelled(), "executors observe the token");

        // The two queued tasks became terminal-cancelled instantly; the
        // running one still owes a completion.
        let v = q.status(id).unwrap();
        assert_eq!((v.done, v.running), (2, 1));
        assert_eq!(v.state, SubmissionState::Running);

        q.complete(id, running.index, {
            let mut o = done(&running);
            o.status = JobStatus::Completed(result_stub());
            o
        });
        assert_eq!(q.status(id).unwrap().state, SubmissionState::Cancelled);
        let report = q.report(id).unwrap();
        assert_eq!(report.cancelled(), 2);
        assert_eq!(report.completed(), 1);
    }

    fn result_stub() -> swiftsim_core::SimulationResult {
        // Cheapest honest way to get a real result: run the tiny job.
        let job = jobs(1).remove(0);
        swiftsim_core::run(
            job.app.as_ref(),
            &job.cfg,
            &swiftsim_core::RunOptions::default().with_fidelity(job.fidelity),
        )
        .unwrap()
    }

    #[test]
    fn requeue_is_bounded() {
        let q = JobQueue::new(2, 1);
        let id = q.submit("c", "s", 0, jobs(1)).unwrap();

        // Two losses: requeued both times.
        for _ in 0..2 {
            let t = claim(&q, "dying-worker");
            assert!(q.requeue(t.submission, t.index, "connection dropped"));
            assert_eq!(q.status(id).unwrap().state, SubmissionState::Queued);
        }
        // Third loss exhausts the budget: the task fails.
        let t = claim(&q, "dying-worker");
        assert!(!q.requeue(t.submission, t.index, "connection dropped"));
        let v = q.status(id).unwrap();
        assert_eq!(v.state, SubmissionState::Failed);
        let report = q.report(id).unwrap();
        assert!(report.rows[0]
            .error
            .as_deref()
            .unwrap()
            .contains("lost executor 3 times"));
    }

    /// Regression: infrastructure losses and execution failures used to be
    /// indistinguishable to the caller-facing budget. With one loss cap of
    /// 1 and one retry cap of 1, a connection drop followed by a reported
    /// failure would exhaust a shared counter; independent counters keep
    /// both budgets intact.
    #[test]
    fn infra_losses_and_exec_failures_are_capped_independently() {
        let q = JobQueue::new(1, 1);
        let id = q.submit("c", "s", 0, jobs(1)).unwrap();

        // One reported execution failure: retried (1 <= max_exec_retries).
        let t = claim(&q, "flaky-sim");
        assert!(q.grant_retry(t.submission, t.index));
        assert_eq!(q.status(id).unwrap().state, SubmissionState::Queued);

        // One connection drop: requeued. A shared counter would be at 2
        // here and fail the task; the infra budget must be untouched by
        // the execution failure above.
        let t = claim(&q, "dying-worker");
        assert!(
            q.requeue(t.submission, t.index, "connection dropped"),
            "an execution failure must not consume the infrastructure budget"
        );

        // Second execution failure: the retry budget is spent. The task is
        // left Running for the caller to complete with the real error —
        // grant_retry never invents an executor-loss message for it.
        let t = claim(&q, "flaky-sim");
        assert!(!q.grant_retry(t.submission, t.index));
        assert_eq!(q.status(id).unwrap().running, 1);
        q.complete(id, t.index, done(&t));
        let report = q.report(id).unwrap();
        assert_eq!(
            report.rows[0].error.as_deref(),
            Some("test stub"),
            "the task fails with the real execution error"
        );
    }

    #[test]
    fn requeue_executor_returns_only_that_workers_leases() {
        let q = JobQueue::new(5, 1);
        let id = q.submit("c", "s", 0, jobs(3)).unwrap();
        let t_a = claim(&q, "a");
        let _t_b = claim(&q, "b");
        let lost = q.requeue_executor("a", "killed");
        assert_eq!(lost.len(), 1);
        assert_eq!(lost[0].submission, t_a.submission);
        assert_eq!(lost[0].index, t_a.index);
        assert_eq!(lost[0].executor, "a");
        assert!(lost[0].requeued, "budget of 5 grants the requeue");
        assert!(!lost[0].label.is_empty());
        let v = q.status(id).unwrap();
        assert_eq!(v.running, 1, "b's lease survives");
        // a's task is claimable again.
        let t2 = claim(&q, "a2");
        assert_eq!(t2.index, t_a.index);
    }

    #[test]
    fn requeue_executor_reports_exhausted_budgets() {
        let q = JobQueue::new(0, 1);
        let id = q.submit("c", "s", 0, jobs(1)).unwrap();
        let _t = claim(&q, "doomed");
        let lost = q.requeue_executor("doomed", "killed");
        assert_eq!(lost.len(), 1);
        assert!(!lost[0].requeued, "loss budget of 0 fails the task");
        assert_eq!(q.status(id).unwrap().state, SubmissionState::Failed);
    }

    #[test]
    fn reap_expired_requeues_stale_leases() {
        let q = JobQueue::new(5, 1);
        q.submit("c", "s", 0, jobs(1)).unwrap();
        let _t = claim(&q, "remote-hung");
        assert!(
            q.reap_expired(Duration::from_secs(3600), "remote-")
                .is_empty(),
            "fresh lease"
        );
        std::thread::sleep(Duration::from_millis(20));
        assert!(
            q.reap_expired(Duration::from_millis(1), "local-")
                .is_empty(),
            "prefix filter protects other executors"
        );
        let reaped = q.reap_expired(Duration::from_millis(1), "remote-");
        assert_eq!(reaped.len(), 1);
        assert_eq!(reaped[0].executor, "remote-hung");
        assert!(reaped[0].requeued);
    }

    #[test]
    fn queue_wait_and_state_counts_track_the_lifecycle() {
        let q = JobQueue::new(1, 1);
        let id = q.submit("c", "s", 0, jobs(3)).unwrap();
        assert_eq!(
            q.state_counts(),
            TaskStateCounts {
                queued: 3,
                ..TaskStateCounts::default()
            }
        );
        std::thread::sleep(Duration::from_millis(15));
        let t = claim(&q, "w");
        assert!(
            t.queue_wait >= Duration::from_millis(15),
            "{:?}",
            t.queue_wait
        );
        let counts = q.state_counts();
        assert_eq!((counts.queued, counts.running), (2, 1));
        q.complete(id, t.index, {
            let mut o = done(&t);
            o.status = JobStatus::Completed(result_stub());
            o
        });
        q.cancel(id);
        let counts = q.state_counts();
        assert_eq!(counts.completed, 1);
        assert_eq!(counts.cancelled, 2);
        assert_eq!(counts.running + counts.queued, 0);
    }

    #[test]
    fn prejudged_tasks_are_born_terminal() {
        let q = JobQueue::new(1, 1);
        let mut js = jobs(2);
        let warm_job = js.remove(0);
        let warm_outcome = JobOutcome {
            index: warm_job.spec.index,
            label: warm_job.spec.label(),
            status: JobStatus::Cached(result_stub()),
            attempts: 0,
            wall: Duration::ZERO,
        };
        let cold = js.remove(0);
        let id = q
            .submit_prejudged(
                "c",
                "s",
                0,
                vec![(warm_job, Some(warm_outcome)), (cold, None)],
            )
            .unwrap();
        // Only the cold task is schedulable; the warm one never dispatches.
        let t = claim(&q, "w");
        assert_eq!(t.index, 1);
        q.complete(id, t.index, done(&t));
        let report = q.report(id).unwrap();
        assert_eq!(report.cached(), 1);
    }

    #[test]
    fn drain_refuses_submits_and_releases_idle_executors() {
        let q = Arc::new(JobQueue::new(1, 1));
        let id = q.submit("c", "s", 0, jobs(1)).unwrap();
        q.drain();
        assert!(q.submit("c", "late", 0, jobs(1)).is_none());

        // Existing work is still handed out during drain...
        let t = claim(&q, "w");
        q.complete(id, t.index, done(&t));
        // ...and once nothing is left, executors are told to exit.
        assert!(matches!(
            q.next_task("w", Duration::from_secs(5)),
            Dispatch::Drain
        ));
        assert!(q.is_idle());
    }

    #[test]
    fn blocked_next_task_wakes_on_submit() {
        let q = Arc::new(JobQueue::new(1, 1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || match q2.next_task("w", Duration::from_secs(10)) {
            Dispatch::Task(t) => t.job.spec.label(),
            other => panic!("expected task, got {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(30));
        q.submit("c", "s", 0, jobs(1)).unwrap();
        let label = waiter.join().unwrap();
        assert!(label.contains("nw/"), "{label}");
    }
}
