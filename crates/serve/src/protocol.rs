//! The wire protocol: line-delimited JSON over a byte stream.
//!
//! Every message — request or response, client or worker — is one JSON
//! object serialized compactly on a single line, terminated by `\n`. The
//! framing is trivial on purpose: any language (or `nc`) can speak it, it
//! needs no length prefixes, and a partial write is detectable as a
//! missing newline. Requests carry an `"op"` field naming the operation;
//! responses carry `"ok"` (and `"error"` when `ok` is false).
//!
//! The protocol is strictly request→response on each connection: the
//! sender writes one line, then reads one line. Remote workers use the
//! same shape (they *poll* for tasks rather than being pushed to), which
//! keeps every connection half-duplex and the server free of write races.

use std::io::{BufRead, Write};
use swiftsim_metrics::Json;

/// Version tag carried in `hello`/`ping` responses. Bump on incompatible
/// message changes; workers refuse to join a coordinator with a different
/// version (a worker from another build would also fail the job-key
/// determinism check, but refusing early gives a clear error).
///
/// Version 2: tasks carry a trace context (`submission`/`index` as
/// run/task ids plus a `trace` flag), workers may attach `profile`,
/// `decode_us`, and `simulate_us` to `task-result`, and the coordinator
/// answers `metrics` and `dump-events` ops.
pub const PROTOCOL_VERSION: u64 = 2;

/// A protocol-level failure: the peer closed, sent garbage, or violated
/// the request/response shape.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed or closed.
    Io(std::io::Error),
    /// A line arrived but was not a JSON object.
    Malformed(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "connection: {e}"),
            WireError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Write one message: compact JSON, one line, flushed.
pub fn write_message(w: &mut impl Write, msg: &Json) -> Result<(), WireError> {
    let mut line = msg.dump();
    line.push('\n');
    w.write_all(line.as_bytes())?;
    w.flush()?;
    Ok(())
}

/// Read one message. `Ok(None)` means the peer closed the stream cleanly
/// between messages (EOF at a line boundary).
pub fn read_message(r: &mut impl BufRead) -> Result<Option<Json>, WireError> {
    let mut line = String::new();
    loop {
        line.clear();
        let n = r.read_line(&mut line)?;
        if n == 0 {
            return Ok(None);
        }
        if line.trim().is_empty() {
            continue; // tolerate blank keep-alive lines
        }
        let json = Json::parse(line.trim()).map_err(WireError::Malformed)?;
        if !matches!(json, Json::Obj(_)) {
            return Err(WireError::Malformed(format!(
                "expected a JSON object, got: {}",
                line.trim()
            )));
        }
        return Ok(Some(json));
    }
}

/// `{"ok": true, ...fields}`.
pub fn ok_response(fields: Vec<(&str, Json)>) -> Json {
    let mut pairs = vec![("ok", Json::Bool(true))];
    pairs.extend(fields);
    Json::obj(pairs)
}

/// `{"ok": false, "error": message}`.
pub fn err_response(message: impl Into<String>) -> Json {
    Json::obj(vec![
        ("ok", Json::Bool(false)),
        ("error", Json::str(message.into())),
    ])
}

/// The request's `"op"` field, or `""` when absent.
pub fn op_of(msg: &Json) -> &str {
    msg.get("op").and_then(Json::as_str).unwrap_or("")
}

/// A string field of a message.
pub fn str_field<'m>(msg: &'m Json, key: &str) -> Option<&'m str> {
    msg.get(key).and_then(Json::as_str)
}

/// An unsigned integer field of a message.
pub fn u64_field(msg: &Json, key: &str) -> Option<u64> {
    msg.get(key).and_then(Json::as_u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_over_a_buffer() {
        let msg = Json::obj(vec![
            ("op", Json::str("submit")),
            ("priority", Json::int(3)),
            ("spec", Json::str("workload = nw\nscale = tiny\n")),
        ]);
        let mut wire = Vec::new();
        write_message(&mut wire, &msg).unwrap();
        write_message(&mut wire, &ok_response(vec![("job", Json::int(1))])).unwrap();

        let mut r = std::io::BufReader::new(wire.as_slice());
        let got = read_message(&mut r).unwrap().unwrap();
        assert_eq!(op_of(&got), "submit");
        assert_eq!(u64_field(&got, "priority"), Some(3));
        // The embedded newlines in the spec stay inside the one-line frame.
        assert!(str_field(&got, "spec").unwrap().contains("scale = tiny"));

        let reply = read_message(&mut r).unwrap().unwrap();
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
        assert_eq!(u64_field(&reply, "job"), Some(1));

        // Clean EOF between messages is None, not an error.
        assert!(read_message(&mut r).unwrap().is_none());
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let mut r = std::io::BufReader::new(&b"{not json}\n"[..]);
        assert!(matches!(read_message(&mut r), Err(WireError::Malformed(_))));
        let mut r = std::io::BufReader::new(&b"42\n"[..]);
        assert!(matches!(read_message(&mut r), Err(WireError::Malformed(_))));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let mut r = std::io::BufReader::new(&b"\n\n{\"op\":\"ping\"}\n"[..]);
        let got = read_message(&mut r).unwrap().unwrap();
        assert_eq!(op_of(&got), "ping");
    }
}
