//! The remote worker: `swiftsim serve --worker <coordinator>`.
//!
//! A worker is deliberately thin: connect, introduce itself, then loop
//! *pulling* tasks. Each task arrives as a **single-job campaign spec in
//! text form** — the worker parses and resolves it with the exact same
//! machinery a local campaign uses, which means it independently
//! recomputes the job's content-addressed key. The key travels back with
//! the result, and the coordinator rejects the result if the keys
//! disagree: any skew between the two processes (simulator version, GPU
//! preset tables, trace file contents) is caught at merge time instead of
//! silently corrupting a sweep.
//!
//! Liveness is structural, not configured: the worker's TCP connection
//! *is* its heartbeat. A killed worker drops the socket, the coordinator
//! requeues its lease within one read timeout; a wedged-but-connected
//! worker is bounded by the coordinator's lease timer.

use crate::protocol::{
    err_response, read_message, str_field, u64_field, write_message, WireError, PROTOCOL_VERSION,
};
use std::io::BufReader;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;
use swiftsim_campaign::{
    CacheMode, CampaignSpec, CancelToken, ExecutorOptions, JobRunner, JobStatus, ResultCache,
};
use swiftsim_metrics::Json;

/// Worker configuration.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Coordinator address (`host:port`).
    pub coordinator: String,
    /// Name reported to the coordinator (diagnostics only; liveness is
    /// per-connection).
    pub name: String,
    /// On-disk result cache directory for simulations run here.
    pub cache_dir: PathBuf,
    /// On-disk cache policy.
    pub cache: CacheMode,
    /// Per-task simulation retries.
    pub max_retries: u32,
}

impl Default for WorkerOptions {
    fn default() -> Self {
        WorkerOptions {
            coordinator: "127.0.0.1:7733".to_owned(),
            name: "worker".to_owned(),
            cache_dir: PathBuf::from("target/swiftsim-campaigns/worker-cache"),
            cache: CacheMode::Off,
            max_retries: 1,
        }
    }
}

/// What a worker did before the coordinator drained.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerSummary {
    /// Tasks simulated successfully.
    pub completed: u64,
    /// Tasks served from this worker's own disk cache.
    pub cached: u64,
    /// Tasks that failed here (the coordinator decides about retries).
    pub failed: u64,
}

/// Run a worker until the coordinator tells it to drain.
///
/// # Errors
///
/// Returns [`WireError`] when the coordinator is unreachable, closes the
/// connection, or violates the protocol. Task-level simulation failures
/// are *not* errors: they are reported back as failed task results.
pub fn run_worker(opts: &WorkerOptions) -> Result<WorkerSummary, WireError> {
    let stream = TcpStream::connect(&opts.coordinator)?;
    stream.set_nodelay(true).ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);

    let hello = Json::obj(vec![
        ("op", Json::str("worker-hello")),
        ("name", Json::str(&opts.name)),
        ("version", Json::int(PROTOCOL_VERSION)),
    ]);
    write_message(&mut writer, &hello)?;
    let reply = expect_reply(&mut reader)?;
    if reply.get("ok") != Some(&Json::Bool(true)) {
        return Err(WireError::Malformed(format!(
            "coordinator refused hello: {}",
            str_field(&reply, "error").unwrap_or("?")
        )));
    }

    let exec_opts = ExecutorOptions {
        workers: 1,
        max_retries: opts.max_retries,
        progress: false,
        heartbeat: None,
        profile: false,
    };
    let cache = ResultCache::new(opts.cache_dir.clone(), opts.cache);
    let runner = JobRunner::new(exec_opts.clone(), cache.clone());
    // Used for tasks whose coordinator asked for a trace (`"trace": true`):
    // the profiler's per-module frames ship back with the result and merge
    // into the coordinator's session-wide Perfetto timeline.
    let profiled = JobRunner::new(
        ExecutorOptions {
            profile: true,
            ..exec_opts
        },
        cache,
    );

    let mut summary = WorkerSummary::default();
    loop {
        let request = Json::obj(vec![
            ("op", Json::str("task-request")),
            ("name", Json::str(&opts.name)),
        ]);
        write_message(&mut writer, &request)?;
        let reply = expect_reply(&mut reader)?;
        if reply.get("drain") == Some(&Json::Bool(true)) {
            return Ok(summary);
        }
        let Some(task) = reply.get("task").filter(|t| !matches!(t, Json::Null)) else {
            // Coordinator had nothing within its poll window; ask again.
            continue;
        };

        let result_msg = execute_task(&runner, &profiled, task, &mut summary);
        write_message(&mut writer, &result_msg)?;
        let ack = expect_reply(&mut reader)?;
        if ack.get("ok") != Some(&Json::Bool(true)) {
            return Err(WireError::Malformed(format!(
                "coordinator rejected task result: {}",
                str_field(&ack, "error").unwrap_or("?")
            )));
        }
    }
}

fn expect_reply(reader: &mut BufReader<TcpStream>) -> Result<Json, WireError> {
    match read_message(reader)? {
        Some(msg) => Ok(msg),
        None => Err(WireError::Malformed(
            "coordinator closed the connection".to_owned(),
        )),
    }
}

/// Run one shipped task and build its `task-result` message.
///
/// The coordinator's trace context rides along: `submission`/`index` are
/// echoed back as the run/task ids, per-stage wall times are attached for
/// the coordinator's fleet-wide latency histograms, and when the task
/// asked for a trace the profiler's frames ship back under `"profile"`.
fn execute_task(
    runner: &JobRunner,
    profiled: &JobRunner,
    task: &Json,
    summary: &mut WorkerSummary,
) -> Json {
    let submission = u64_field(task, "submission").unwrap_or(0);
    let index = u64_field(task, "index").unwrap_or(0);
    let base = move |status: &str| {
        vec![
            ("op", Json::str("task-result")),
            ("submission", Json::int(submission)),
            ("index", Json::int(index)),
            ("status", Json::str(status)),
        ]
    };
    let fail = |summary: &mut WorkerSummary, key: String, error: String| {
        summary.failed += 1;
        let mut fields = base("failed");
        fields.push(("key", Json::str(key)));
        fields.push(("error", Json::str(error)));
        fields.push(("attempts", Json::int(1)));
        fields.push(("wall_us", Json::int(0)));
        Json::obj(fields)
    };

    let Some(spec_text) = str_field(task, "spec") else {
        return fail(summary, String::new(), "task carried no spec".to_owned());
    };
    let jobs = match CampaignSpec::parse(spec_text).and_then(|s| s.resolve()) {
        Ok(jobs) => jobs,
        Err(e) => return fail(summary, String::new(), format!("spec unusable here: {e}")),
    };
    if jobs.len() != 1 {
        return fail(
            summary,
            String::new(),
            format!("shipped spec expanded to {} jobs, expected 1", jobs.len()),
        );
    }
    let job = &jobs[0];
    // The independently recomputed key: the coordinator compares it with
    // its own before accepting the result.
    let key = job.key_hex();

    let traced = matches!(task.get("trace"), Some(Json::Bool(true)));
    let runner = if traced { profiled } else { runner };
    let (outcome, stages) = runner.run_one_timed(job, &CancelToken::new());
    match outcome.status {
        JobStatus::Completed(result) | JobStatus::Cached(result) => {
            let cached = outcome.attempts == 0;
            if cached {
                summary.cached += 1;
            } else {
                summary.completed += 1;
            }
            let mut fields = base(if cached { "cached" } else { "ok" });
            fields.push(("key", Json::str(key)));
            fields.push(("result", result.to_json()));
            fields.push(("attempts", Json::int(u64::from(outcome.attempts))));
            fields.push(("wall_us", Json::int(outcome.wall.as_micros() as u64)));
            fields.push(("decode_us", Json::int(stages.build.as_micros() as u64)));
            fields.push(("simulate_us", Json::int(stages.simulate.as_micros() as u64)));
            if let Some(report) = &result.profile {
                fields.push(("profile", report.to_json()));
            }
            Json::obj(fields)
        }
        JobStatus::Failed { error } => fail(summary, key, error),
        JobStatus::Cancelled => fail(summary, key, "cancelled on worker".to_owned()),
    }
}

/// Keep connecting to the coordinator until it answers, up to `attempts`
/// tries spaced `backoff` apart — lets workers start before (or survive a
/// restart of) the coordinator.
///
/// # Errors
///
/// The last connection error when every attempt failed.
pub fn run_worker_with_retry(
    opts: &WorkerOptions,
    attempts: u32,
    backoff: Duration,
) -> Result<WorkerSummary, WireError> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            std::thread::sleep(backoff);
        }
        match run_worker(opts) {
            Ok(summary) => return Ok(summary),
            Err(WireError::Io(e)) if e.kind() == std::io::ErrorKind::ConnectionRefused => {
                last = Some(WireError::Io(e));
            }
            Err(other) => return Err(other),
        }
    }
    Err(last.unwrap_or_else(|| WireError::Malformed(err_response("no attempts made").dump())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::op_of;

    #[test]
    fn execute_task_reports_key_and_result() {
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(
                std::env::temp_dir().join("swiftsim-worker-test"),
                CacheMode::Off,
            ),
        );
        let spec =
            CampaignSpec::parse("workload = nw\nscale = tiny\npreset = swift-memory").unwrap();
        let job = spec.resolve().unwrap().remove(0);
        let task = Json::obj(vec![
            ("submission", Json::int(1)),
            ("index", Json::int(0)),
            (
                "spec",
                Json::str(job.spec.to_single_spec_text("t").unwrap()),
            ),
        ]);
        let mut summary = WorkerSummary::default();
        let msg = execute_task(&runner, &runner, &task, &mut summary);
        assert_eq!(op_of(&msg), "task-result");
        assert_eq!(str_field(&msg, "status"), Some("ok"));
        assert_eq!(str_field(&msg, "key"), Some(job.key_hex().as_str()));
        assert!(msg.get("result").is_some());
        // Stage latencies ride along for the coordinator's histograms; an
        // untraced task ships no profiler frames.
        assert!(u64_field(&msg, "simulate_us").is_some());
        assert!(msg.get("profile").is_none());
        assert_eq!(summary.completed, 1);
    }

    #[test]
    fn traced_task_ships_the_profiler_track() {
        let plain = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(
                std::env::temp_dir().join("swiftsim-worker-trace-test"),
                CacheMode::Off,
            ),
        );
        let profiled = JobRunner::new(
            ExecutorOptions {
                profile: true,
                ..ExecutorOptions::default()
            },
            ResultCache::new(
                std::env::temp_dir().join("swiftsim-worker-trace-test"),
                CacheMode::Off,
            ),
        );
        let spec =
            CampaignSpec::parse("workload = nw\nscale = tiny\npreset = swift-memory").unwrap();
        let job = spec.resolve().unwrap().remove(0);
        let task = Json::obj(vec![
            ("submission", Json::int(7)),
            ("index", Json::int(0)),
            ("trace", Json::Bool(true)),
            (
                "spec",
                Json::str(job.spec.to_single_spec_text("t").unwrap()),
            ),
        ]);
        let mut summary = WorkerSummary::default();
        let msg = execute_task(&plain, &profiled, &task, &mut summary);
        assert_eq!(str_field(&msg, "status"), Some("ok"));
        let profile = msg.get("profile").expect("traced task ships its frames");
        let frames = profile.get("frames").and_then(Json::as_arr).unwrap();
        assert!(!frames.is_empty(), "profiler recorded at least one frame");
        // The trace context echoes back: same run/task ids the
        // coordinator dispatched with.
        assert_eq!(u64_field(&msg, "submission"), Some(7));
        assert_eq!(u64_field(&msg, "index"), Some(0));
    }

    #[test]
    fn unusable_spec_fails_without_crashing() {
        let runner = JobRunner::new(
            ExecutorOptions::default(),
            ResultCache::new(
                std::env::temp_dir().join("swiftsim-worker-test"),
                CacheMode::Off,
            ),
        );
        let task = Json::obj(vec![
            ("submission", Json::int(1)),
            ("index", Json::int(0)),
            ("spec", Json::str("workload = doom\nscale = tiny")),
        ]);
        let mut summary = WorkerSummary::default();
        let msg = execute_task(&runner, &runner, &task, &mut summary);
        assert_eq!(str_field(&msg, "status"), Some("failed"));
        assert!(str_field(&msg, "error").unwrap().contains("spec unusable"));
        assert_eq!(summary.failed, 1);
    }
}
