//! Minimal async-signal-safe SIGTERM/SIGINT handling, without libc.
//!
//! The workspace builds with no external crates, so the handler is wired
//! through a hand-declared `signal(2)` binding. The handler does the only
//! thing an async-signal-safe handler may do with std: store to an atomic.
//! The serve accept loop polls [`shutdown_requested`] and begins a
//! graceful drain when it flips.
//!
//! The flag is process-global (signals are), and only ever *set* by the
//! handler. Shutdown initiated by protocol (`shutdown` op) or by tests
//! uses each server's own stop flag instead, so several in-process
//! servers — as in the test suite — stay independent.

use std::sync::atomic::{AtomicBool, Ordering};

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

/// Whether SIGTERM/SIGINT has been observed.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod imp {
    use super::SHUTDOWN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        // `signal(2)` from the platform libc, which every Rust binary on
        // unix links anyway. `sighandler_t` is a function pointer, passed
        // and returned as `usize` to keep the declaration type-simple.
        fn signal(signum: i32, handler: usize) -> usize;
    }

    extern "C" fn on_terminate(_signum: i32) {
        // Only an atomic store: async-signal-safe.
        SHUTDOWN.store(true, Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_terminate as extern "C" fn(i32) as *const () as usize;
        unsafe {
            signal(SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

/// Install the SIGTERM/SIGINT → drain handlers (no-op off unix; the
/// `shutdown` protocol op still works everywhere).
pub fn install_handlers() {
    imp::install();
}
