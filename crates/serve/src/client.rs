//! A thin synchronous client for the serve protocol — what `swiftsim
//! submit` and the test suite use, and a template for clients in any
//! language (the protocol is just JSON lines over TCP).

use crate::protocol::{read_message, str_field, u64_field, write_message, WireError};
use std::io::BufReader;
use std::net::TcpStream;
use std::time::Duration;
use swiftsim_metrics::Json;

/// One connection to a serve daemon.
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl ServeClient {
    /// Connect to a daemon at `addr` (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates the connection error.
    pub fn connect(addr: &str) -> std::io::Result<ServeClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(ServeClient {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Send one request and read its response.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] on connection loss or malformed responses.
    pub fn request(&mut self, msg: &Json) -> Result<Json, WireError> {
        write_message(&mut self.writer, msg)?;
        match read_message(&mut self.reader)? {
            Some(reply) => Ok(reply),
            None => Err(WireError::Malformed(
                "daemon closed the connection".to_owned(),
            )),
        }
    }

    /// A request that must come back `ok`; protocol-level errors become
    /// [`WireError::Malformed`] carrying the daemon's message.
    ///
    /// # Errors
    ///
    /// Connection loss, malformed responses, or an `ok: false` reply.
    pub fn request_ok(&mut self, msg: &Json) -> Result<Json, WireError> {
        let reply = self.request(msg)?;
        if reply.get("ok") == Some(&Json::Bool(true)) {
            Ok(reply)
        } else {
            Err(WireError::Malformed(
                str_field(&reply, "error")
                    .unwrap_or("request failed")
                    .to_owned(),
            ))
        }
    }

    /// Liveness check; returns the daemon's protocol version.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request_ok`].
    pub fn ping(&mut self) -> Result<u64, WireError> {
        let reply = self.request_ok(&Json::obj(vec![("op", Json::str("ping"))]))?;
        Ok(u64_field(&reply, "version").unwrap_or(0))
    }

    /// Submit a campaign spec (the same text format `swiftsim campaign`
    /// reads). Returns `(submission id, task count)`.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request_ok`]; an unusable spec is reported by
    /// the daemon and surfaces here as [`WireError::Malformed`].
    pub fn submit(
        &mut self,
        spec_text: &str,
        client: &str,
        priority: u64,
    ) -> Result<(u64, u64), WireError> {
        let reply = self.request_ok(&Json::obj(vec![
            ("op", Json::str("submit")),
            ("spec", Json::str(spec_text)),
            ("client", Json::str(client)),
            ("priority", Json::int(priority)),
        ]))?;
        Ok((
            u64_field(&reply, "job").unwrap_or(0),
            u64_field(&reply, "tasks").unwrap_or(0),
        ))
    }

    /// One submission's status fields.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request_ok`].
    pub fn status(&mut self, job: u64) -> Result<Json, WireError> {
        self.request_ok(&Json::obj(vec![
            ("op", Json::str("status")),
            ("job", Json::int(job)),
        ]))
    }

    /// Cancel a submission.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request_ok`].
    pub fn cancel(&mut self, job: u64) -> Result<(), WireError> {
        self.request_ok(&Json::obj(vec![
            ("op", Json::str("cancel")),
            ("job", Json::int(job)),
        ]))?;
        Ok(())
    }

    /// Block until the submission finishes and return the full report
    /// response (`rows` carries one JSON object per job, in the same
    /// schema as `swiftsim campaign --json`).
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request_ok`]; also fails when `timeout` passes
    /// before the submission finishes.
    pub fn wait_result(&mut self, job: u64, timeout: Duration) -> Result<Json, WireError> {
        self.request_ok(&Json::obj(vec![
            ("op", Json::str("result")),
            ("job", Json::int(job)),
            ("wait", Json::Bool(true)),
            ("timeout_ms", Json::int(timeout.as_millis() as u64)),
        ]))
    }

    /// Daemon statistics: metric counters plus warm-cache stats.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request_ok`].
    pub fn stats(&mut self) -> Result<Json, WireError> {
        self.request_ok(&Json::obj(vec![("op", Json::str("stats"))]))
    }

    /// Metrics exposition: `(Prometheus text, structured JSON)` — the
    /// daemon's counters, gauges, and latency histograms.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request_ok`].
    pub fn metrics(&mut self) -> Result<(String, Json), WireError> {
        let reply = self.request_ok(&Json::obj(vec![("op", Json::str("metrics"))]))?;
        let text = str_field(&reply, "text").unwrap_or("").to_owned();
        let json = reply.get("metrics").cloned().unwrap_or(Json::Null);
        Ok((text, json))
    }

    /// The daemon's flight-recorder contents (ring buffer of structured
    /// lifecycle events), for post-mortems without waiting for a crash.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request_ok`].
    pub fn dump_events(&mut self) -> Result<Json, WireError> {
        self.request_ok(&Json::obj(vec![("op", Json::str("dump-events"))]))
    }

    /// Ask the daemon to drain and exit.
    ///
    /// # Errors
    ///
    /// See [`ServeClient::request_ok`].
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        self.request_ok(&Json::obj(vec![("op", Json::str("shutdown"))]))?;
        Ok(())
    }
}
