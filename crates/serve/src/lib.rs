//! Simulation-as-a-service for Swift-Sim: a long-running daemon with an
//! async job queue, warm caches, and multi-worker scheduling.
//!
//! The Swift-Sim paper's headline workflow — design-space exploration
//! over thousands of configurations (§IV-B3) — is bursty and repetitive:
//! the same traces, the same GPU models, near-identical sweeps submitted
//! over and over as a design converges. A one-shot `swiftsim campaign`
//! pays the full cold-start price every time: decode every trace, rebuild
//! every simulator, and only the on-disk result cache carries over. This
//! crate keeps a simulator *service* resident instead:
//!
//! * [`server`] — the `swiftsim serve` daemon: accepts sweep specs and
//!   single-run requests over a line-delimited JSON protocol on TCP,
//!   schedules them fairly across clients with per-submission priorities,
//!   and answers status/list/cancel/result/stats queries. SIGTERM drains
//!   gracefully: running work finishes, nothing new starts.
//! * [`queue`] — the async job queue behind it: task-granular states
//!   (queued → running → done/failed/cancelled), round-robin fairness
//!   across clients, bounded requeue of tasks whose executor vanished.
//! * [`warm`] — what makes the daemon worth it: an LRU result cache keyed
//!   by the campaign engine's content-addressed job keys, and a shared
//!   decoded-kernel cache so file-backed traces decode once per daemon,
//!   not once per job.
//! * [`worker`] — `swiftsim serve --worker <addr>`: remote execution
//!   slots. Tasks ship as single-job campaign specs; each worker
//!   re-resolves them independently and the coordinator cross-checks the
//!   recomputed job key before accepting a result, so any skew between
//!   machines is caught at merge time. A worker's TCP connection is its
//!   liveness: kill the worker and its lease requeues within a read
//!   timeout.
//! * [`client`] / [`protocol`] — a thin synchronous client (used by
//!   `swiftsim submit`) and the wire format underneath everything.
//!
//! Scheduling never changes answers: results merge back by task index,
//! so a sweep's report is bit-identical to a local `swiftsim campaign`
//! run of the same spec, whether it ran on zero, one, or ten workers.
//!
//! # Example
//!
//! ```
//! use std::time::Duration;
//! use swiftsim_serve::client::ServeClient;
//! use swiftsim_serve::server::{self, ServeOptions};
//!
//! // An in-process daemon on an ephemeral port (exactly what
//! // `swiftsim serve` does, minus the CLI).
//! let handle = server::start(ServeOptions {
//!     listen: "127.0.0.1:0".to_owned(),
//!     cache_dir: std::env::temp_dir().join("swiftsim-serve-doc"),
//!     ..ServeOptions::default()
//! })
//! .unwrap();
//!
//! let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();
//! let (job, tasks) = client
//!     .submit("workload = nw\nscale = tiny\npreset = swift-memory\n", "docs", 0)
//!     .unwrap();
//! assert_eq!(tasks, 1);
//! let report = client.wait_result(job, Duration::from_secs(120)).unwrap();
//! assert!(report.get("rows").is_some());
//! handle.shutdown();
//! ```

#![deny(unsafe_code)] // `signal.rs` carries the one vetted exception
#![warn(missing_docs)]

pub mod client;
pub mod obs;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod warm;
pub mod worker;
