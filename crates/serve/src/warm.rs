//! Warm in-process caches: the reason a resubmitted sweep comes back in
//! microseconds instead of minutes.
//!
//! The daemon outlives individual requests, so it can keep hot state that
//! a one-shot `swiftsim campaign` run rebuilds every time:
//!
//! * **Result cache** — finished [`SimulationResult`]s keyed by the same
//!   content-addressed job key the on-disk [`swiftsim_campaign::ResultCache`]
//!   uses. A warm hit skips the scheduler, the runner, and the disk round
//!   trip entirely. LRU-evicted under a byte budget.
//! * **Decoded-kernel cache** — a shared
//!   [`swiftsim_trace::DecodedKernelCache`]: file-backed traces decode each
//!   kernel once per *daemon*, not once per job, even across submissions
//!   from different clients. Jobs whose trace is already in memory
//!   (built-in workloads) bypass it — wrapping them would only add copies.
//!
//! Both caches key by content (trace hash, job key), never by request
//! identity: two clients submitting the same work share the warmth.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};
use swiftsim_campaign::{ResolvedJob, WorkloadSource};
use swiftsim_core::SimulationResult;
use swiftsim_trace::{CachedTraceSource, DecodedKernelCache, KernelCacheStats};

struct ResultEntry {
    result: SimulationResult,
    bytes: usize,
    tick: u64,
}

struct ResultLruState {
    map: HashMap<u64, ResultEntry>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Statistics of the warm result cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResultCacheStats {
    /// Lookups served from memory.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries evicted under budget pressure.
    pub evictions: u64,
    /// Resident entries.
    pub entries: usize,
    /// Approximate resident bytes.
    pub bytes: usize,
}

/// The daemon's warm state, shared by every executor and connection.
pub struct WarmCaches {
    results: Mutex<ResultLruState>,
    result_budget: usize,
    kernels: Arc<DecodedKernelCache>,
}

impl WarmCaches {
    /// Caches bounded to roughly `result_budget` bytes of results and
    /// `kernel_budget` bytes of decoded kernels.
    pub fn new(result_budget: usize, kernel_budget: usize) -> Arc<Self> {
        Arc::new(WarmCaches {
            results: Mutex::new(ResultLruState {
                map: HashMap::new(),
                bytes: 0,
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            result_budget,
            kernels: DecodedKernelCache::new(kernel_budget),
        })
    }

    fn lock(&self) -> MutexGuard<'_, ResultLruState> {
        self.results.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Look up a finished result by job key.
    pub fn lookup_result(&self, key: u64) -> Option<SimulationResult> {
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        match state.map.get_mut(&key) {
            Some(entry) => {
                entry.tick = tick;
                let result = entry.result.clone();
                state.hits += 1;
                Some(result)
            }
            None => {
                state.misses += 1;
                None
            }
        }
    }

    /// Remember a finished result under its job key, evicting
    /// least-recently-used entries past the byte budget. Results larger
    /// than the whole budget are not cached.
    pub fn store_result(&self, key: u64, result: &SimulationResult) {
        // The serialized form is an honest, representation-independent
        // size measure, and results are stored rarely (once per fresh
        // simulation) so the serialization cost is noise.
        let bytes = result.to_json().dump().len();
        if bytes > self.result_budget {
            return;
        }
        let mut state = self.lock();
        state.tick += 1;
        let tick = state.tick;
        if let Some(old) = state.map.remove(&key) {
            state.bytes -= old.bytes;
        }
        state.map.insert(
            key,
            ResultEntry {
                result: result.clone(),
                bytes,
                tick,
            },
        );
        state.bytes += bytes;
        while state.bytes > self.result_budget {
            let Some((&lru, _)) = state
                .map
                .iter()
                .filter(|(k, _)| **k != key)
                .min_by_key(|(_, e)| e.tick)
            else {
                break;
            };
            let evicted = state.map.remove(&lru).expect("lru key exists");
            state.bytes -= evicted.bytes;
            state.evictions += 1;
        }
    }

    /// Route a job's trace decodes through the shared decoded-kernel
    /// cache. Only file-backed traces are wrapped: built-in workloads are
    /// already in memory, and the cache keys by content hash, so the job
    /// key (and therefore result caching) is unaffected either way.
    pub fn warm_job(&self, job: ResolvedJob) -> ResolvedJob {
        if !matches!(job.spec.workload, WorkloadSource::TraceFile(_)) {
            return job;
        }
        match CachedTraceSource::new(Arc::clone(&job.app), Arc::clone(&self.kernels)) {
            Ok(cached) => ResolvedJob {
                app: Arc::new(cached),
                ..job
            },
            // A source whose content hash is unreadable will fail again in
            // the runner with a proper per-job error; don't fail here.
            Err(_) => job,
        }
    }

    /// Warm result cache statistics.
    pub fn result_stats(&self) -> ResultCacheStats {
        let state = self.lock();
        ResultCacheStats {
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            entries: state.map.len(),
            bytes: state.bytes,
        }
    }

    /// Decoded-kernel cache statistics.
    pub fn kernel_stats(&self) -> KernelCacheStats {
        self.kernels.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swiftsim_campaign::CampaignSpec;

    fn run_tiny() -> SimulationResult {
        let job = CampaignSpec::parse("workload = nw\nscale = tiny\npreset = swift-memory")
            .unwrap()
            .resolve()
            .unwrap()
            .remove(0);
        swiftsim_core::run(
            job.app.as_ref(),
            &job.cfg,
            &swiftsim_core::RunOptions::default().with_fidelity(job.fidelity),
        )
        .unwrap()
    }

    #[test]
    fn result_cache_hits_and_stats() {
        let warm = WarmCaches::new(1 << 20, 1 << 20);
        let result = run_tiny();
        assert!(warm.lookup_result(7).is_none());
        warm.store_result(7, &result);
        let hit = warm.lookup_result(7).unwrap();
        assert_eq!(hit.cycles, result.cycles);
        let stats = warm.result_stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (1, 1, 1));
        assert!(stats.bytes > 0);
    }

    #[test]
    fn result_cache_evicts_lru_under_budget() {
        let result = run_tiny();
        let one = result.to_json().dump().len();
        // Room for two results, not three.
        let warm = WarmCaches::new(one * 2 + one / 2, 1 << 20);
        warm.store_result(1, &result);
        warm.store_result(2, &result);
        assert!(warm.lookup_result(1).is_some(), "touch 1: now 2 is LRU");
        warm.store_result(3, &result);
        let stats = warm.result_stats();
        assert_eq!(stats.evictions, 1);
        assert!(warm.lookup_result(1).is_some());
        assert!(warm.lookup_result(2).is_none(), "LRU entry was evicted");
        assert!(warm.lookup_result(3).is_some());
        assert!(warm.result_stats().bytes <= one * 2 + one / 2);
    }

    #[test]
    fn oversized_results_are_not_cached() {
        let warm = WarmCaches::new(8, 1 << 20);
        warm.store_result(1, &run_tiny());
        assert_eq!(warm.result_stats().entries, 0);
    }

    #[test]
    fn builtin_workload_jobs_are_not_wrapped() {
        let warm = WarmCaches::new(1 << 20, 1 << 20);
        let job = CampaignSpec::parse("workload = nw\nscale = tiny")
            .unwrap()
            .resolve()
            .unwrap()
            .remove(0);
        let key = job.key;
        let app_before = Arc::clone(&job.app);
        let warmed = warm.warm_job(job);
        assert!(Arc::ptr_eq(&warmed.app, &app_before), "no pointless wrap");
        assert_eq!(warmed.key, key);
    }

    #[test]
    fn file_backed_jobs_share_the_kernel_cache() {
        // Write a real trace file, resolve a job from it, and prove two
        // warmed copies decode through one shared cache.
        use swiftsim_trace::{ApplicationTrace, InstBuilder, KernelTrace, Opcode};
        let mut kernel = KernelTrace::new("k", (1, 1, 1), (32, 1, 1));
        let b = kernel.push_block();
        let w = b.push_warp();
        w.push(
            InstBuilder::new(Opcode::Ldg)
                .dst(2)
                .src(1)
                .global_strided(0x1000, 4, 4),
        );
        w.push(InstBuilder::new(Opcode::Exit));
        let app = ApplicationTrace::new("warmtest", vec![kernel]);
        let dir = std::env::temp_dir().join(format!("swiftsim-warm-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("warm.sstrace");
        std::fs::write(&path, app.to_trace_text()).unwrap();

        let spec = format!("trace = {}\nscale = tiny\n", path.display());
        let job = CampaignSpec::parse(&spec)
            .unwrap()
            .resolve()
            .unwrap()
            .remove(0);
        let warm = WarmCaches::new(1 << 20, 1 << 20);

        let a = warm.warm_job(job.clone());
        let b = warm.warm_job(job);
        a.app.decode_kernel(0).unwrap();
        b.app.decode_kernel(0).unwrap();
        let stats = warm.kernel_stats();
        assert_eq!((stats.misses, stats.hits), (1, 1), "second decode is warm");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
