//! The coordinator daemon: TCP accept loop, request dispatch, local
//! executor slots, remote-worker bookkeeping, and graceful drain.
//!
//! Threading model (std only, no async runtime):
//!
//! * a **supervisor** thread owns the non-blocking listener: it accepts
//!   connections, reaps expired remote leases, watches the shutdown
//!   flags, and orchestrates the drain;
//! * **local executor** threads (`local_slots` of them) pull tasks from
//!   the queue and run them through the shared [`JobRunner`];
//! * one **connection** thread per client or worker socket speaks the
//!   line-delimited JSON protocol; worker connections double as the
//!   liveness signal — a dropped socket requeues everything leased to it.
//!
//! Every simulation — submitted locally or executed remotely — flows
//! through the same warm caches and the same on-disk result cache, and
//! merges back into its submission by task index, so a sweep's report is
//! bit-identical to what a local `swiftsim campaign` run produces no
//! matter how execution was scheduled.
//!
//! Observability: every significant latency (queue wait, dispatch,
//! decode, simulate, result merge) lands in a mergeable histogram of the
//! daemon's [`Registry`], scrapable via the `metrics` op as Prometheus
//! text or JSON; task-lifecycle events feed a bounded [`FlightRecorder`]
//! that dumps JSONL on deadlock, panic, exhausted worker-loss budgets, or
//! the explicit `dump-events` op; and with a trace output configured
//! ([`ServeOptions::trace_out`]) every task's journey — queue wait,
//! executor span, and the executing worker's own profiler frames shipped
//! back with `task-result` — merges into one Perfetto timeline via
//! [`TraceMux`].

use crate::obs::{failure_kind, TraceMux};
use crate::protocol::{
    err_response, ok_response, op_of, str_field, u64_field, write_message, WireError,
    PROTOCOL_VERSION,
};
use crate::queue::{Dispatch, JobQueue, LeasedTask, RequeuedLease, SubmissionView};
use crate::signal;
use crate::warm::WarmCaches;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use swiftsim_campaign::{
    CacheMode, CampaignSpec, ExecutorOptions, JobOutcome, JobRunner, JobStatus, ResultCache,
    StageTimings,
};
use swiftsim_core::SimulationResult;
use swiftsim_metrics::{CounterSet, FlightRecorder, Json, ProfileReport, Registry};

/// Everything configurable about a serve daemon.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Listen address, e.g. `127.0.0.1:7733` (`:0` picks a free port).
    pub listen: String,
    /// Local executor threads. `None` means one per available CPU; `Some(0)`
    /// runs no local simulations (remote workers do everything).
    pub local_slots: Option<usize>,
    /// On-disk result cache directory (shared with `swiftsim campaign`).
    pub cache_dir: PathBuf,
    /// On-disk cache policy.
    pub cache: CacheMode,
    /// Per-task simulation retries (errors/panics), as in campaigns.
    pub max_retries: u32,
    /// Warm in-memory result cache budget, bytes.
    pub result_cache_bytes: usize,
    /// Shared decoded-kernel cache budget, bytes.
    pub kernel_cache_bytes: usize,
    /// Times a task may lose its remote worker (connection drop, lease
    /// expiry) before failing. Infrastructure budget: counted and capped
    /// independently of execution failures, so a flaky fleet cannot burn a
    /// task's retry budget without ever running it.
    pub max_worker_losses: u32,
    /// Re-runs granted to a task whose remote worker reported a real
    /// execution failure (the remote analogue of `max_retries`, which
    /// only governs the local executor and the worker's own runner).
    pub max_remote_retries: u32,
    /// Remote lease age after which a task is taken back from a
    /// non-responsive worker.
    pub worker_lease: Duration,
    /// Write a merged Perfetto/Chrome trace of the whole session here at
    /// drain. Setting this also turns on self-profiling for every task
    /// (local slots directly; remote workers via the shipped `trace`
    /// flag), so the trace carries per-module simulator tracks.
    pub trace_out: Option<PathBuf>,
    /// Where flight-recorder dumps (JSONL, one event per line) go. With
    /// `None`, dumps still announce themselves on stderr but events stay
    /// in memory (reachable via the `dump-events` op).
    pub events_out: Option<PathBuf>,
    /// Flight-recorder ring capacity, in events. `0` disables recording
    /// entirely (the disabled path is one branch per event).
    pub flight_capacity: usize,
    /// Checkpoint every locally executed task at kernel boundaries into
    /// this directory (one snapshot per job cache key). A daemon killed
    /// mid-task leaves the last boundary snapshot behind; after restart,
    /// the resubmitted task resumes from it instead of starting over.
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            listen: "127.0.0.1:7733".to_owned(),
            local_slots: None,
            cache_dir: PathBuf::from("target/swiftsim-campaigns/cache"),
            cache: CacheMode::Use,
            max_retries: 1,
            result_cache_bytes: 64 << 20,
            kernel_cache_bytes: 256 << 20,
            max_worker_losses: 2,
            max_remote_retries: 1,
            worker_lease: Duration::from_secs(300),
            trace_out: None,
            events_out: None,
            flight_capacity: 4096,
            checkpoint_dir: None,
        }
    }
}

struct ServerShared {
    queue: JobQueue,
    warm: Arc<WarmCaches>,
    runner: JobRunner,
    /// Counters, gauges, and latency histograms, exposed by `metrics`.
    obs: Registry,
    /// Ring buffer of structured lifecycle events for post-mortems.
    flight: FlightRecorder,
    /// Merged-trace accumulator; `Some` iff `trace_out` is configured.
    tracer: Option<TraceMux>,
    started: Instant,
    /// Instance stop flag ( `shutdown` op, [`ServerHandle::shutdown`] ).
    stop: AtomicBool,
    /// Set once the drain finished; connection threads then close.
    finished: AtomicBool,
    conn_ids: AtomicU64,
    opts: ServeOptions,
}

impl ServerShared {
    fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    fn counters(&self) -> &CounterSet {
        self.obs.counters()
    }
}

/// A running daemon: its bound address plus shutdown/join control.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<ServerShared>,
    supervisor: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The address the daemon actually bound (resolves `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The daemon's metric counters (shared; live).
    pub fn counters(&self) -> CounterSet {
        self.shared.obs.counters().clone()
    }

    /// The daemon's full metric registry (shared; live): counters plus
    /// gauges and latency histograms.
    pub fn registry(&self) -> Registry {
        self.shared.obs.clone()
    }

    /// The daemon's flight recorder (shared; live).
    pub fn flight(&self) -> FlightRecorder {
        self.shared.flight.clone()
    }

    /// Begin a graceful drain and block until the daemon has fully
    /// stopped: queued work finishes, new submissions are refused.
    pub fn shutdown(self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let _ = self.supervisor.join();
    }

    /// Block until the daemon stops on its own (SIGTERM or a `shutdown`
    /// request).
    pub fn join(self) {
        let _ = self.supervisor.join();
    }
}

/// Bind and start a daemon. Returns once the listener is accepting.
///
/// # Errors
///
/// Returns the bind error when the listen address is unusable.
pub fn start(opts: ServeOptions) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&opts.listen)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;

    let exec_opts = ExecutorOptions {
        workers: 1,
        max_retries: opts.max_retries,
        progress: false,
        heartbeat: None,
        // Tracing needs per-module frames from every simulation.
        profile: opts.trace_out.is_some(),
    };
    let cache = ResultCache::new(opts.cache_dir.clone(), opts.cache);
    let mut runner = JobRunner::new(exec_opts, cache);
    if let Some(dir) = &opts.checkpoint_dir {
        runner = runner.with_checkpoint_dir(dir.clone());
    }
    let obs = Registry::new();
    // Touch the gauges so a scrape before any activity still shows them.
    obs.gauge("queue_depth");
    obs.gauge("workers_connected");
    obs.gauge("connections_open");
    let shared = Arc::new(ServerShared {
        queue: JobQueue::new(opts.max_worker_losses, opts.max_remote_retries),
        warm: WarmCaches::new(opts.result_cache_bytes, opts.kernel_cache_bytes),
        runner,
        obs,
        flight: FlightRecorder::with_capacity(opts.flight_capacity),
        tracer: opts.trace_out.as_ref().map(|_| TraceMux::new()),
        started: Instant::now(),
        stop: AtomicBool::new(false),
        finished: AtomicBool::new(false),
        conn_ids: AtomicU64::new(0),
        opts,
    });

    let supervisor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-supervisor".to_owned())
            .spawn(move || supervise(&shared, &listener))
            .expect("spawn supervisor")
    };

    Ok(ServerHandle {
        addr,
        shared,
        supervisor,
    })
}

fn supervise(shared: &Arc<ServerShared>, listener: &TcpListener) {
    let slots = shared.opts.local_slots.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });

    let mut executors = Vec::with_capacity(slots);
    for i in 0..slots {
        let shared = Arc::clone(shared);
        executors.push(
            std::thread::Builder::new()
                .name(format!("serve-local-{i}"))
                .spawn(move || local_executor(&shared, i))
                .expect("spawn executor"),
        );
    }

    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    let mut last_reap = Instant::now();
    loop {
        if shared.stopping() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let id = shared.conn_ids.fetch_add(1, Ordering::Relaxed);
                shared.counters().incr("connections");
                connections.push(
                    std::thread::Builder::new()
                        .name(format!("serve-conn-{id}"))
                        .spawn(move || {
                            shared.obs.gauge("connections_open").add(1);
                            if let Err(e) = serve_connection(&shared, stream, id) {
                                eprintln!("serve: connection {id}: {e}");
                            }
                            shared.obs.gauge("connections_open").add(-1);
                        })
                        .expect("spawn connection"),
                );
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                eprintln!("serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
        if last_reap.elapsed() >= Duration::from_secs(1) {
            last_reap = Instant::now();
            for lease in shared
                .queue
                .reap_expired(shared.opts.worker_lease, "remote-")
            {
                note_lost_lease(shared, &lease, "lease-expiry");
            }
            shared
                .obs
                .gauge("queue_depth")
                .set(shared.queue.depth() as i64);
        }
        connections.retain(|c| !c.is_finished());
    }

    // Graceful drain: no new submissions, queued work still runs, then
    // every thread is joined so the process exits with nothing in flight.
    eprintln!("serve: draining ({} tasks pending)", shared.queue.depth());
    shared.flight.record_with("drain", || {
        ev_fields(vec![("pending", Json::int(shared.queue.depth() as u64))])
    });
    shared.queue.drain();
    while !shared.queue.is_idle() {
        std::thread::sleep(Duration::from_millis(20));
        for lease in shared
            .queue
            .reap_expired(shared.opts.worker_lease, "remote-")
        {
            note_lost_lease(shared, &lease, "lease-expiry");
        }
    }
    for exec in executors {
        let _ = exec.join();
    }
    shared.finished.store(true, Ordering::SeqCst);
    for conn in connections {
        let _ = conn.join();
    }
    if let (Some(path), Some(mux)) = (&shared.opts.trace_out, &shared.tracer) {
        match std::fs::write(path, mux.to_chrome_json().dump()) {
            Ok(()) => eprintln!(
                "serve: wrote merged trace ({} events) to {}",
                mux.len(),
                path.display()
            ),
            Err(e) => eprintln!("serve: trace write to {} failed: {e}", path.display()),
        }
    }
    eprintln!("serve: drained, exiting");
}

fn local_executor(shared: &ServerShared, slot: usize) {
    let name = format!("local-{slot}");
    loop {
        match shared.queue.next_task(&name, Duration::from_millis(200)) {
            Dispatch::Task(task) => {
                let dispatched = Instant::now();
                note_dispatch(shared, &task, &name, dispatched);
                let (outcome, timings) = execute_local(shared, &task);
                observe_stages(shared, &timings);
                if let Some(mux) = &shared.tracer {
                    let done = Instant::now();
                    mux.task_span(
                        task.submission,
                        task.index,
                        &task.job.spec.label(),
                        &name,
                        dispatched,
                        done,
                    );
                    if let JobStatus::Completed(r) = &outcome.status {
                        if let Some(report) = &r.profile {
                            mux.executor_report(
                                &name,
                                task.submission,
                                task.index,
                                report,
                                dispatched,
                                done,
                            );
                        }
                    }
                }
                observe_outcome(
                    shared,
                    &outcome,
                    "local",
                    &name,
                    task.submission,
                    task.index,
                );
                shared.queue.complete(task.submission, task.index, outcome);
            }
            Dispatch::Idle => {}
            Dispatch::Drain => break,
        }
    }
}

fn execute_local(shared: &ServerShared, task: &LeasedTask) -> (JobOutcome, StageTimings) {
    let started = Instant::now();
    if task.cancel.is_cancelled() {
        let outcome = JobOutcome {
            index: task.index,
            label: task.job.spec.label(),
            status: JobStatus::Cancelled,
            attempts: 0,
            wall: started.elapsed(),
        };
        return (outcome, StageTimings::default());
    }
    let warm_hit = shared.warm.lookup_result(task.job.key);
    let warm_lookup = started.elapsed();
    if let Some(result) = warm_hit {
        shared.counters().incr("warm_result_hits");
        let outcome = JobOutcome {
            index: task.index,
            label: task.job.spec.label(),
            status: JobStatus::Cached(result),
            attempts: 0,
            wall: started.elapsed(),
        };
        let timings = StageTimings {
            cache_lookup: warm_lookup,
            ..StageTimings::default()
        };
        return (outcome, timings);
    }
    let job = shared.warm.warm_job(task.job.clone());
    let (outcome, mut timings) = shared.runner.run_one_timed(&job, &task.cancel);
    timings.cache_lookup += warm_lookup;
    if let JobStatus::Completed(r) | JobStatus::Cached(r) = &outcome.status {
        shared.warm.store_result(task.job.key, r);
    }
    (outcome, timings)
}

fn record_outcome(counters: &CounterSet, outcome: &JobOutcome, origin: &str) {
    counters.incr(&format!("tasks_{origin}"));
    match &outcome.status {
        JobStatus::Completed(_) => counters.incr("tasks_completed"),
        JobStatus::Cached(_) => counters.incr("tasks_cached"),
        JobStatus::Failed { .. } => counters.incr("tasks_failed"),
        JobStatus::Cancelled => counters.incr("tasks_cancelled"),
    }
}

/// Flight-event fields from borrowed pairs.
fn ev_fields(pairs: Vec<(&str, Json)>) -> Vec<(String, Json)> {
    pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect()
}

/// A task left the queue for an executor: histogram its queue wait,
/// flight-record the dispatch, and open its queue span in the trace.
fn note_dispatch(shared: &ServerShared, task: &LeasedTask, executor: &str, dispatched: Instant) {
    shared
        .obs
        .observe_duration("queue_wait_us", task.queue_wait);
    shared.flight.record_with("dispatch", || {
        ev_fields(vec![
            ("run", Json::int(task.submission)),
            ("task", Json::int(task.index as u64)),
            ("label", Json::str(task.job.spec.label())),
            ("executor", Json::str(executor)),
            ("wait_us", Json::int(task.queue_wait.as_micros() as u64)),
        ])
    });
    if let Some(mux) = &shared.tracer {
        let wait_ns = task.queue_wait.as_nanos().min(u64::MAX as u128) as u64;
        mux.queue_span(
            task.submission,
            task.index,
            &task.job.spec.label(),
            wait_ns,
            dispatched,
            executor,
        );
    }
}

/// Per-stage attempt timings → the fleet-wide latency histograms.
/// `decode` is simulator construction (config validation + trace
/// decode setup); zero stages (not reached, e.g. cache hits) are skipped
/// so the histograms describe work actually done.
fn observe_stages(shared: &ServerShared, t: &StageTimings) {
    shared
        .obs
        .observe_duration("cache_lookup_us", t.cache_lookup);
    if t.build > Duration::ZERO {
        shared.obs.observe_duration("decode_us", t.build);
    }
    if t.simulate > Duration::ZERO {
        shared.obs.observe_duration("simulate_us", t.simulate);
    }
    if t.store > Duration::ZERO {
        shared.obs.observe_duration("store_us", t.store);
    }
}

/// Account one finished task everywhere: counters, labeled counters, the
/// flight recorder — and when the failure is a deadlock or a panic,
/// classify it, log it structurally, and dump the flight recorder.
fn observe_outcome(
    shared: &ServerShared,
    outcome: &JobOutcome,
    origin: &str,
    executor: &str,
    run: u64,
    task: usize,
) {
    record_outcome(shared.counters(), outcome, origin);
    let status = match &outcome.status {
        JobStatus::Completed(_) => "completed",
        JobStatus::Cached(_) => "cached",
        JobStatus::Failed { .. } => "failed",
        JobStatus::Cancelled => "cancelled",
    };
    shared
        .obs
        .incr_labeled("tasks_done", &[("origin", origin), ("status", status)]);
    shared.flight.record_with("task-done", || {
        let mut f = vec![
            ("run", Json::int(run)),
            ("task", Json::int(task as u64)),
            ("executor", Json::str(executor)),
            ("origin", Json::str(origin)),
            ("status", Json::str(status)),
            ("wall_us", Json::int(outcome.wall.as_micros() as u64)),
        ];
        if let JobStatus::Failed { error } = &outcome.status {
            f.push(("error", Json::str(error.as_str())));
        }
        ev_fields(f)
    });
    if let JobStatus::Failed { error } = &outcome.status {
        if let Some(kind) = failure_kind(error) {
            shared.counters().incr(&format!("failures_{kind}"));
            shared.flight.record_with(kind, || {
                ev_fields(vec![
                    ("run", Json::int(run)),
                    ("task", Json::int(task as u64)),
                    ("executor", Json::str(executor)),
                    ("error", Json::str(error.as_str())),
                ])
            });
            eprintln!(
                "serve: event={kind} run={run} task={task} executor={executor} error={error:?}"
            );
            dump_flight(shared, kind);
        }
    }
}

/// A running task lost its executor (connection drop or lease expiry):
/// count it, flight-record it, log it structurally, and — when its loss
/// budget is spent and it was failed instead of requeued — dump the
/// flight recorder, because work was lost to infrastructure.
fn note_lost_lease(shared: &ServerShared, lease: &RequeuedLease, kind: &str) {
    shared.counters().incr("tasks_requeued");
    shared.flight.record_with(kind, || {
        ev_fields(vec![
            ("run", Json::int(lease.submission)),
            ("task", Json::int(lease.index as u64)),
            ("label", Json::str(lease.label.as_str())),
            ("executor", Json::str(lease.executor.as_str())),
            ("requeued", Json::Bool(lease.requeued)),
        ])
    });
    eprintln!(
        "serve: event={kind} executor={} run={} task={} requeued={}",
        lease.executor, lease.submission, lease.index, lease.requeued
    );
    if !lease.requeued {
        shared.counters().incr("tasks_loss_exhausted");
        dump_flight(shared, "loss-budget-exhausted");
    }
}

/// Dump the flight recorder: JSONL to [`ServeOptions::events_out`] when
/// configured, always announced on stderr with the trigger.
fn dump_flight(shared: &ServerShared, reason: &str) {
    if !shared.flight.is_enabled() {
        return;
    }
    shared.counters().incr("flight_dumps");
    match &shared.opts.events_out {
        Some(path) => match std::fs::write(path, shared.flight.dump_jsonl()) {
            Ok(()) => eprintln!(
                "serve: event=flight-dump reason={reason} events={} file={}",
                shared.flight.len(),
                path.display()
            ),
            Err(e) => eprintln!("serve: event=flight-dump reason={reason} write failed: {e}"),
        },
        None => eprintln!(
            "serve: event=flight-dump reason={reason} events={} (no events file configured; \
             use the dump-events op to read them)",
            shared.flight.len()
        ),
    }
}

/// Per-connection state: whether this connection is a worker, and what it
/// currently has leased (for requeue-on-drop).
struct ConnState {
    id: u64,
    worker: Option<String>,
    lease: Option<Lease>,
}

/// A task leased to a remote worker, plus when it was shipped (the
/// coordinator-side anchor for clock-rebasing the worker's trace frames).
struct Lease {
    task: LeasedTask,
    dispatched: Instant,
}

impl ConnState {
    fn executor_name(&self) -> String {
        // Unique per connection even when two workers share a name.
        format!(
            "remote-{}-{}",
            self.id,
            self.worker.as_deref().unwrap_or("client")
        )
    }
}

fn serve_connection(
    shared: &Arc<ServerShared>,
    stream: TcpStream,
    id: u64,
) -> Result<(), WireError> {
    stream.set_nodelay(true).ok();
    stream
        .set_read_timeout(Some(Duration::from_millis(100)))
        .ok();
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut conn = ConnState {
        id,
        worker: None,
        lease: None,
    };

    let result = loop {
        match read_request(shared, &mut reader) {
            Ok(Some(msg)) => {
                let reply = handle_request(shared, &mut conn, &msg);
                write_message(&mut writer, &reply)?;
            }
            Ok(None) => break Ok(()),
            Err(e) => break Err(e),
        }
    };

    // Anything still leased to this connection lost its executor.
    if conn.lease.is_some() {
        let requeued = shared
            .queue
            .requeue_executor(&conn.executor_name(), "worker connection lost");
        for lease in &requeued {
            note_lost_lease(shared, lease, "worker-loss-requeue");
        }
        eprintln!(
            "serve: worker {:?} disconnected with a task in flight; requeued {}",
            conn.worker.as_deref().unwrap_or("?"),
            requeued.iter().filter(|l| l.requeued).count(),
        );
    }
    if let Some(worker) = &conn.worker {
        shared.obs.gauge("workers_connected").add(-1);
        shared.flight.record_with("worker-drop", || {
            ev_fields(vec![
                ("conn", Json::int(id)),
                ("worker", Json::str(worker.as_str())),
            ])
        });
        eprintln!("serve: event=worker-disconnect conn={id} worker={worker}");
    }
    result
}

/// Read one request, tolerating read timeouts (used to poll the shutdown
/// flags) and partial lines (the buffer persists across timeouts).
fn read_request(
    shared: &ServerShared,
    reader: &mut BufReader<TcpStream>,
) -> Result<Option<Json>, WireError> {
    use std::io::BufRead;
    let mut buf = String::new();
    loop {
        match reader.read_line(&mut buf) {
            Ok(0) => {
                return if buf.is_empty() {
                    Ok(None) // clean EOF between messages
                } else {
                    Err(WireError::Malformed("EOF mid-message".to_owned()))
                };
            }
            Ok(_) if buf.ends_with('\n') => {
                let line = buf.trim();
                if line.is_empty() {
                    buf.clear();
                    continue;
                }
                let json = Json::parse(line).map_err(WireError::Malformed)?;
                return Ok(Some(json));
            }
            Ok(_) => {} // partial line; keep reading
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                // Idle between requests: close once the daemon has fully
                // drained (mid-message partials still get their chance
                // until then).
                if shared.finished.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
}

fn handle_request(shared: &Arc<ServerShared>, conn: &mut ConnState, msg: &Json) -> Json {
    match op_of(msg) {
        "ping" => ok_response(vec![
            ("version", Json::int(PROTOCOL_VERSION)),
            ("role", Json::str("coordinator")),
        ]),
        "submit" => handle_submit(shared, msg),
        "status" => match u64_field(msg, "job").and_then(|id| shared.queue.status(id)) {
            Some(view) => ok_response(view_fields(&view)),
            None => err_response("unknown job"),
        },
        "list" => {
            let jobs: Vec<Json> = shared
                .queue
                .list()
                .iter()
                .map(|v| {
                    Json::Obj(
                        view_fields(v)
                            .into_iter()
                            .map(|(k, j)| (k.to_owned(), j))
                            .collect(),
                    )
                })
                .collect();
            ok_response(vec![("jobs", Json::Arr(jobs))])
        }
        "cancel" => match u64_field(msg, "job") {
            Some(id) if shared.queue.cancel(id) => {
                shared.counters().incr("jobs_cancelled");
                shared
                    .flight
                    .record_with("cancel", || ev_fields(vec![("run", Json::int(id))]));
                ok_response(vec![("job", Json::int(id))])
            }
            _ => err_response("unknown job"),
        },
        "result" => handle_result(shared, msg),
        "stats" => handle_stats(shared),
        "metrics" => handle_metrics(shared),
        "dump-events" => handle_dump_events(shared),
        "shutdown" => {
            shared.stop.store(true, Ordering::SeqCst);
            ok_response(vec![("draining", Json::Bool(true))])
        }
        "worker-hello" => {
            let version = u64_field(msg, "version").unwrap_or(0);
            if version != PROTOCOL_VERSION {
                return err_response(format!(
                    "protocol version mismatch: coordinator {PROTOCOL_VERSION}, worker {version}"
                ));
            }
            let name = str_field(msg, "name").unwrap_or("worker").to_owned();
            shared.counters().incr("workers_joined");
            shared.obs.gauge("workers_connected").add(1);
            shared.flight.record_with("worker-connect", || {
                ev_fields(vec![
                    ("conn", Json::int(conn.id)),
                    ("worker", Json::str(name.as_str())),
                ])
            });
            eprintln!("serve: event=worker-connect conn={} worker={name}", conn.id);
            conn.worker = Some(name);
            ok_response(vec![("version", Json::int(PROTOCOL_VERSION))])
        }
        "task-request" => handle_task_request(shared, conn),
        "task-result" => handle_task_result(shared, conn, msg),
        other => err_response(format!("unknown op {other:?}")),
    }
}

fn handle_submit(shared: &Arc<ServerShared>, msg: &Json) -> Json {
    // A shutdown request flips the stop flag before the supervisor gets
    // around to draining the queue; refuse on either signal so no
    // submission slips through that window.
    if shared.stopping() {
        return err_response("daemon is draining; submission refused");
    }
    let Some(spec_text) = str_field(msg, "spec") else {
        return err_response("submit needs a \"spec\" field");
    };
    let client = str_field(msg, "client").unwrap_or("anonymous");
    let priority = u64_field(msg, "priority").unwrap_or(0);

    let spec = match CampaignSpec::parse(spec_text) {
        Ok(s) => s,
        Err(e) => return err_response(e.to_string()),
    };
    let jobs = match spec.resolve() {
        Ok(j) => j,
        Err(e) => return err_response(e.to_string()),
    };

    // Judge the warm result cache now: warm tasks are born finished and
    // never touch the scheduler.
    let total = jobs.len();
    let mut warm_hits = 0u64;
    let prejudged: Vec<_> = jobs
        .into_iter()
        .map(|job| {
            let outcome = shared.warm.lookup_result(job.key).map(|result| {
                warm_hits += 1;
                JobOutcome {
                    index: job.spec.index,
                    label: job.spec.label(),
                    status: JobStatus::Cached(result),
                    attempts: 0,
                    wall: Duration::ZERO,
                }
            });
            (job, outcome)
        })
        .collect();

    match shared
        .queue
        .submit_prejudged(client, &spec.name, priority, prejudged)
    {
        Some(id) => {
            shared.counters().incr("jobs_submitted");
            shared.counters().add("tasks_total", total as u64);
            shared.counters().add("warm_submit_hits", warm_hits);
            shared
                .counters()
                .incr(&format!("client.{client}.submissions"));
            shared
                .obs
                .incr_labeled("client_submissions", &[("client", client)]);
            shared.flight.record_with("submit", || {
                ev_fields(vec![
                    ("run", Json::int(id)),
                    ("client", Json::str(client)),
                    ("name", Json::str(spec.name.as_str())),
                    ("tasks", Json::int(total as u64)),
                    ("warm", Json::int(warm_hits)),
                    ("priority", Json::int(priority)),
                ])
            });
            ok_response(vec![
                ("job", Json::int(id)),
                ("tasks", Json::int(total as u64)),
                ("warm", Json::int(warm_hits)),
            ])
        }
        None => err_response("daemon is draining; submission refused"),
    }
}

fn handle_result(shared: &Arc<ServerShared>, msg: &Json) -> Json {
    let Some(id) = u64_field(msg, "job") else {
        return err_response("result needs a \"job\" field");
    };
    let wait = matches!(msg.get("wait"), Some(Json::Bool(true)));
    let timeout = Duration::from_millis(u64_field(msg, "timeout_ms").unwrap_or(600_000));

    let state = if wait {
        shared.queue.wait_terminal(id, timeout)
    } else {
        shared
            .queue
            .status(id)
            .map(|v| v.state)
            .filter(|s| s.is_terminal())
    };
    match state {
        None if shared.queue.status(id).is_none() => err_response("unknown job"),
        None => err_response("job not finished"),
        Some(_) => {
            let report = shared.queue.report(id).expect("terminal implies report");
            let rows: Vec<Json> = report.rows.iter().map(|r| r.to_json()).collect();
            ok_response(vec![
                ("job", Json::int(id)),
                ("name", Json::str(&report.name)),
                ("summary", Json::str(report.summary_line())),
                ("rows", Json::Arr(rows)),
            ])
        }
    }
}

fn handle_stats(shared: &Arc<ServerShared>) -> Json {
    let depth = shared.queue.depth();
    shared.counters().set("queue_depth", depth as u64);
    shared.obs.gauge("queue_depth").set(depth as i64);
    let counts = shared.queue.state_counts();
    let rs = shared.warm.result_stats();
    let ks = shared.warm.kernel_stats();
    ok_response(vec![
        (
            "uptime_us",
            Json::int(shared.started.elapsed().as_micros() as u64),
        ),
        ("counters", shared.counters().to_json()),
        (
            "queue",
            Json::obj(vec![
                ("depth", Json::int(depth as u64)),
                (
                    "by_state",
                    Json::obj(vec![
                        ("queued", Json::int(counts.queued as u64)),
                        ("running", Json::int(counts.running as u64)),
                        ("completed", Json::int(counts.completed as u64)),
                        ("cached", Json::int(counts.cached as u64)),
                        ("failed", Json::int(counts.failed as u64)),
                        ("cancelled", Json::int(counts.cancelled as u64)),
                    ]),
                ),
            ]),
        ),
        (
            "result_cache",
            Json::obj(vec![
                ("hits", Json::int(rs.hits)),
                ("misses", Json::int(rs.misses)),
                ("evictions", Json::int(rs.evictions)),
                ("entries", Json::int(rs.entries as u64)),
                ("bytes", Json::int(rs.bytes as u64)),
            ]),
        ),
        (
            "kernel_cache",
            Json::obj(vec![
                ("hits", Json::int(ks.hits)),
                ("misses", Json::int(ks.misses)),
                ("evictions", Json::int(ks.evictions)),
                ("entries", Json::int(ks.entries as u64)),
                ("bytes", Json::int(ks.bytes as u64)),
            ]),
        ),
    ])
}

/// The `metrics` op: Prometheus-style text exposition plus the same data
/// as structured JSON (counters, labeled counters, gauges, histogram
/// summaries).
fn handle_metrics(shared: &Arc<ServerShared>) -> Json {
    let depth = shared.queue.depth();
    shared.counters().set("queue_depth", depth as u64);
    shared.obs.gauge("queue_depth").set(depth as i64);
    ok_response(vec![
        ("text", Json::str(shared.obs.prometheus_text("swiftsim"))),
        ("metrics", shared.obs.to_json()),
    ])
}

/// The `dump-events` op: the flight recorder's current contents, and —
/// when an events file is configured — a dump to disk as a side effect.
fn handle_dump_events(shared: &Arc<ServerShared>) -> Json {
    if shared.opts.events_out.is_some() {
        dump_flight(shared, "dump-events-op");
    }
    let events: Vec<Json> = shared
        .flight
        .snapshot()
        .iter()
        .map(|e| e.to_json())
        .collect();
    ok_response(vec![
        ("enabled", Json::Bool(shared.flight.is_enabled())),
        ("dropped", Json::int(shared.flight.dropped())),
        ("events", Json::Arr(events)),
    ])
}

fn handle_task_request(shared: &Arc<ServerShared>, conn: &mut ConnState) -> Json {
    if conn.worker.is_none() {
        return err_response("task-request before worker-hello");
    }
    if conn.lease.is_some() {
        return err_response("worker already holds a lease");
    }
    let executor = conn.executor_name();
    match shared
        .queue
        .next_task(&executor, Duration::from_millis(500))
    {
        Dispatch::Task(task) => {
            let dispatched = Instant::now();
            let Some(spec_text) = task.job.spec.to_single_spec_text("shipped") else {
                // The job cannot be expressed in spec text (pathological
                // path); fail it rather than bounce it between workers.
                let outcome = JobOutcome {
                    index: task.index,
                    label: task.job.spec.label(),
                    status: JobStatus::Failed {
                        error: "job not shippable to a remote worker".to_owned(),
                    },
                    attempts: 0,
                    wall: Duration::ZERO,
                };
                observe_outcome(
                    shared,
                    &outcome,
                    "remote",
                    &executor,
                    task.submission,
                    task.index,
                );
                shared.queue.complete(task.submission, task.index, outcome);
                return ok_response(vec![("task", Json::Null)]);
            };
            note_dispatch(shared, &task, &executor, dispatched);
            let reply = ok_response(vec![(
                "task",
                Json::obj(vec![
                    ("submission", Json::int(task.submission)),
                    ("index", Json::int(task.index as u64)),
                    ("label", Json::str(task.job.spec.label())),
                    ("key", Json::str(task.job.key_hex())),
                    ("spec", Json::str(spec_text)),
                    // Trace context: submission/index double as the
                    // run/task ids; `trace` asks the worker to profile and
                    // ship its frames back with the result.
                    ("trace", Json::Bool(shared.tracer.is_some())),
                ]),
            )]);
            // Dispatch latency: queue pick to reply packaged.
            shared
                .obs
                .observe_duration("dispatch_us", dispatched.elapsed());
            conn.lease = Some(Lease {
                task: *task,
                dispatched,
            });
            reply
        }
        Dispatch::Idle => ok_response(vec![("task", Json::Null)]),
        Dispatch::Drain => ok_response(vec![("task", Json::Null), ("drain", Json::Bool(true))]),
    }
}

fn handle_task_result(shared: &Arc<ServerShared>, conn: &mut ConnState, msg: &Json) -> Json {
    let received = Instant::now();
    let Some(lease) = conn.lease.take() else {
        return err_response("task-result without a lease");
    };
    let submission = u64_field(msg, "submission");
    let index = u64_field(msg, "index").map(|i| i as usize);
    if submission != Some(lease.task.submission) || index != Some(lease.task.index) {
        conn.lease = Some(lease);
        return err_response("task-result does not match the held lease");
    }
    let Lease { task, dispatched } = lease;
    let executor = conn.executor_name();

    let worker_key = str_field(msg, "key").unwrap_or("");
    let attempts = u64_field(msg, "attempts").unwrap_or(1) as u32;
    let wall = Duration::from_micros(u64_field(msg, "wall_us").unwrap_or(0));
    let status = str_field(msg, "status").unwrap_or("failed");

    // Trace context closes here: the worker's execution becomes a span on
    // this executor's coordinator row, and its shipped profiler frames —
    // clock-rebased into the dispatch→receive window — its own process.
    if let Some(mux) = &shared.tracer {
        mux.task_span(
            task.submission,
            task.index,
            &task.job.spec.label(),
            &executor,
            dispatched,
            received,
        );
        if let Some(profile) = msg.get("profile") {
            match ProfileReport::from_json(profile) {
                Ok(report) => mux.executor_report(
                    &executor,
                    task.submission,
                    task.index,
                    &report,
                    dispatched,
                    received,
                ),
                Err(e) => eprintln!("serve: worker profile unparsable ({executor}): {e}"),
            }
        }
    }
    // Worker-measured stage latencies merge into the same fleet-wide
    // histograms the local slots feed.
    if let Some(us) = u64_field(msg, "decode_us").filter(|us| *us > 0) {
        shared.obs.observe("decode_us", us);
    }
    if let Some(us) = u64_field(msg, "simulate_us").filter(|us| *us > 0) {
        shared.obs.observe("simulate_us", us);
    }

    // End-to-end determinism check: the worker resolved the shipped spec
    // independently; its content-addressed key must agree with ours. A
    // mismatch means version/config/trace skew — the result cannot be
    // trusted as *this* job's answer.
    let outcome = if worker_key != task.job.key_hex() {
        shared.counters().incr("key_mismatches");
        JobOutcome {
            index: task.index,
            label: task.job.spec.label(),
            status: JobStatus::Failed {
                error: format!(
                    "worker job-key mismatch (coordinator {}, worker {worker_key}): \
                     worker runs a different simulator version or sees different inputs",
                    task.job.key_hex()
                ),
            },
            attempts,
            wall,
        }
    } else {
        let status = match status {
            "ok" | "cached" => match msg.get("result").map(SimulationResult::from_json) {
                Some(Ok(result)) => {
                    shared.warm.store_result(task.job.key, &result);
                    if status == "cached" {
                        JobStatus::Cached(result)
                    } else {
                        JobStatus::Completed(result)
                    }
                }
                Some(Err(e)) => JobStatus::Failed {
                    error: format!("worker result unparsable: {e}"),
                },
                None => JobStatus::Failed {
                    error: "worker sent ok without a result".to_owned(),
                },
            },
            _ => JobStatus::Failed {
                error: str_field(msg, "error")
                    .unwrap_or("worker failure")
                    .to_owned(),
            },
        };
        JobOutcome {
            index: task.index,
            label: task.job.spec.label(),
            status,
            attempts,
            wall,
        }
    };
    // A reported failure is an *execution* failure — the worker is alive
    // and talking — so it draws on the task's execution-retry budget, not
    // the executor-loss budget that connection drops and lease expiries
    // use. Within budget the task requeues (likely to land on another
    // worker); past it, the task fails with the real execution error.
    if matches!(outcome.status, JobStatus::Failed { .. })
        && shared.queue.grant_retry(task.submission, task.index)
    {
        shared.counters().incr("tasks_retried");
        shared.flight.record_with("exec-retry", || {
            ev_fields(vec![
                ("run", Json::int(task.submission)),
                ("task", Json::int(task.index as u64)),
                ("executor", Json::str(executor.as_str())),
            ])
        });
        shared.obs.observe_duration("merge_us", received.elapsed());
        return ok_response(vec![("accepted", Json::Bool(true))]);
    }
    observe_outcome(
        shared,
        &outcome,
        "remote",
        &executor,
        task.submission,
        task.index,
    );
    shared.queue.complete(task.submission, task.index, outcome);
    // Merge latency: result line received to merged into the submission.
    shared.obs.observe_duration("merge_us", received.elapsed());
    ok_response(vec![("accepted", Json::Bool(true))])
}

fn view_fields(v: &SubmissionView) -> Vec<(&'static str, Json)> {
    vec![
        ("job", Json::int(v.id)),
        ("name", Json::str(&v.name)),
        ("client", Json::str(&v.client)),
        ("priority", Json::int(v.priority)),
        ("state", Json::str(v.state.name())),
        ("done", Json::int(v.done as u64)),
        ("running", Json::int(v.running as u64)),
        ("total", Json::int(v.total as u64)),
    ]
}
