//! End-to-end tests: a real daemon on a real socket, real workers, real
//! simulations (tiny scale), and the acceptance properties of the serve
//! subsystem — bit-identical reports, worker-loss convergence, warm-cache
//! resubmission, fair scheduling, and graceful drain.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;
use swiftsim_campaign::{run_campaign, CacheMode, CampaignOptions, CampaignSpec};
use swiftsim_metrics::Json;
use swiftsim_serve::client::ServeClient;
use swiftsim_serve::server::{self, ServeOptions};
use swiftsim_serve::worker::{run_worker, WorkerOptions};

const SWEEP_SPEC: &str = "name = e2e\n\
                          workload = nw, bfs\n\
                          scale = tiny\n\
                          preset = swift-sim-basic, swift-sim-memory\n\
                          scheduler = gto, lrr\n";

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("swiftsim-serve-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(tag: &str) -> ServeOptions {
    ServeOptions {
        listen: "127.0.0.1:0".to_owned(),
        local_slots: Some(2),
        cache_dir: scratch(tag),
        cache: CacheMode::Off,
        worker_lease: Duration::from_secs(30),
        ..ServeOptions::default()
    }
}

/// Strip the fields that legitimately differ between runs (wall time,
/// cache provenance, slow flags) and keep everything that must not.
fn prediction_fields(row: &Json) -> String {
    let job = row.get("job").expect("row has job");
    let result = row.get("result").expect("row has result");
    format!(
        "label={} key={} cycles={:?} instructions={:?} ipc_input={}",
        job.get("label").and_then(Json::as_str).unwrap(),
        job.get("key").and_then(Json::as_str).unwrap(),
        result.get("cycles").and_then(Json::as_u64),
        result.get("instructions").and_then(Json::as_u64),
        result.dump().len(), // full result payload size as a cheap digest
    )
}

/// The acceptance test: daemon + 2 remote workers, no local slots. The
/// merged report must be bit-identical (modulo wall time) to a direct
/// local `swiftsim campaign` run of the same spec.
#[test]
fn remote_sweep_matches_local_campaign_bit_for_bit() {
    let mut o = opts("remote-identical");
    o.local_slots = Some(0); // every simulation must flow through workers
    let handle = server::start(o).unwrap();
    let addr = handle.addr().to_string();

    let workers: Vec<_> = (0..2)
        .map(|i| {
            let w = WorkerOptions {
                coordinator: addr.clone(),
                name: format!("w{i}"),
                cache_dir: scratch(&format!("remote-identical-w{i}")),
                cache: CacheMode::Off,
                ..WorkerOptions::default()
            };
            std::thread::spawn(move || run_worker(&w).unwrap())
        })
        .collect();

    let mut client = ServeClient::connect(&addr).unwrap();
    let (job, tasks) = client.submit(SWEEP_SPEC, "acceptance", 0).unwrap();
    assert_eq!(tasks, 8);
    let reply = client.wait_result(job, Duration::from_secs(300)).unwrap();
    let rows = reply.get("rows").and_then(Json::as_arr).unwrap().to_vec();
    assert_eq!(rows.len(), 8);

    // Reference: the same spec run entirely locally, no service involved.
    let spec = CampaignSpec::parse(SWEEP_SPEC).unwrap();
    let local = run_campaign(&spec, &CampaignOptions::default().cache_off()).unwrap();
    assert_eq!(local.failed(), 0);
    let local_rows: Vec<Json> = local.rows.iter().map(|r| r.to_json()).collect();

    for (served, direct) in rows.iter().zip(&local_rows) {
        assert_eq!(
            prediction_fields(served),
            prediction_fields(direct),
            "served row must match the local campaign exactly"
        );
        assert_eq!(
            served.get("status").and_then(Json::as_str),
            Some("ok"),
            "remote-executed rows report ok"
        );
    }

    // Both workers drain cleanly and between them did all the work.
    client.shutdown().unwrap();
    let mut done = 0;
    for w in workers {
        done += w.join().unwrap().completed;
    }
    assert_eq!(done, 8);
    handle.join();
}

/// Kill a worker mid-campaign (drop its socket while it holds a lease):
/// the task requeues and the sweep still converges to a complete report.
#[test]
fn worker_loss_mid_task_converges_via_requeue() {
    let mut o = opts("worker-loss");
    o.local_slots = Some(0);
    let handle = server::start(o).unwrap();
    let addr = handle.addr().to_string();

    let mut client = ServeClient::connect(&addr).unwrap();
    let (job, tasks) = client
        .submit(
            "name = loss\nworkload = nw\nscale = tiny\npreset = swift-sim-memory\nscheduler = gto, lrr\n",
            "c",
            0,
        )
        .unwrap();
    assert_eq!(tasks, 2);

    // A "worker" that claims a task and dies without answering: raw
    // protocol over a socket we then drop. This is exactly what a killed
    // worker process looks like to the coordinator.
    {
        let mut dying = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(dying.try_clone().unwrap());
        let mut say = |line: String| {
            dying.write_all(line.as_bytes()).unwrap();
            dying.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            Json::parse(reply.trim()).unwrap()
        };
        let hello = say("{\"op\":\"worker-hello\",\"name\":\"doomed\",\"version\":2}".to_owned());
        assert_eq!(hello.get("ok"), Some(&Json::Bool(true)));
        let reply = say("{\"op\":\"task-request\",\"name\":\"doomed\"}".to_owned());
        assert!(
            !matches!(reply.get("task"), Some(Json::Null) | None),
            "doomed worker got a lease: {}",
            reply.dump()
        );
        // Socket drops here with the lease unresolved.
    }

    // A healthy worker finishes the sweep, including the requeued task.
    let w = WorkerOptions {
        coordinator: addr.clone(),
        name: "healthy".to_owned(),
        cache_dir: scratch("worker-loss-w"),
        cache: CacheMode::Off,
        ..WorkerOptions::default()
    };
    let healthy = std::thread::spawn(move || run_worker(&w).unwrap());

    let reply = client.wait_result(job, Duration::from_secs(300)).unwrap();
    let rows = reply.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 2);
    for row in rows {
        assert_eq!(row.get("status").and_then(Json::as_str), Some("ok"));
    }

    let stats = client.stats().unwrap();
    let requeued = stats
        .get("counters")
        .and_then(|c| c.get("tasks_requeued"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert!(requeued >= 1, "the dropped lease was requeued: {requeued}");

    client.shutdown().unwrap();
    healthy.join().unwrap();
    handle.join();
}

/// Regression: infrastructure requeues (connection drops, lease expiries)
/// and reported execution failures used to share one bounded-attempt
/// budget, so a sweep on flaky workers could fail a task that no worker
/// ever actually ran to a real error — or burn its execution retries on
/// connection drops. With both caps set to 1, this drives one loss of
/// each kind and the task must still converge to `ok` on a healthy
/// worker; a shared counter would have failed it after the second loss.
#[test]
fn infra_losses_do_not_consume_execution_retries() {
    let mut o = opts("infra-vs-exec");
    o.local_slots = Some(0);
    o.max_worker_losses = 1;
    o.max_remote_retries = 1;
    let handle = server::start(o).unwrap();
    let addr = handle.addr().to_string();

    let mut client = ServeClient::connect(&addr).unwrap();
    let (job, tasks) = client
        .submit(
            "name = flaky\nworkload = nw\nscale = tiny\npreset = swift-sim-memory\nscheduler = gto\n",
            "c",
            0,
        )
        .unwrap();
    assert_eq!(tasks, 1);

    // Raw-protocol worker: hello, then poll task-request until the single
    // task is leased to us (requeues from a prior loss land asynchronously
    // when the server notices the dropped socket).
    let lease_task = |name: &str| -> (TcpStream, BufReader<TcpStream>, Json) {
        let mut sock = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(sock.try_clone().unwrap());
        let say = |sock: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: String| {
            sock.write_all(line.as_bytes()).unwrap();
            sock.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            Json::parse(reply.trim()).unwrap()
        };
        let hello = say(
            &mut sock,
            &mut reader,
            format!("{{\"op\":\"worker-hello\",\"name\":\"{name}\",\"version\":2}}"),
        );
        assert_eq!(hello.get("ok"), Some(&Json::Bool(true)));
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let reply = say(
                &mut sock,
                &mut reader,
                format!("{{\"op\":\"task-request\",\"name\":\"{name}\"}}"),
            );
            match reply.get("task") {
                Some(Json::Null) | None => {
                    assert!(
                        std::time::Instant::now() < deadline,
                        "no lease for {name}: {}",
                        reply.dump()
                    );
                    std::thread::sleep(Duration::from_millis(50));
                }
                Some(task) => return (sock, reader, task.clone()),
            }
        }
    };

    // Loss #1, infrastructure: a worker claims the task and its socket
    // drops with the lease unresolved. max_worker_losses = 1 is now spent.
    drop(lease_task("doomed"));

    // Loss #2, execution: a live worker runs the task and reports a real
    // failure. Under the old shared budget this second loss exhausted the
    // task; independently capped, it only spends max_remote_retries = 1.
    {
        let (mut sock, mut reader, task) = lease_task("flaky");
        let submission = task.get("submission").and_then(Json::as_u64).unwrap();
        let index = task.get("index").and_then(Json::as_u64).unwrap();
        let key = task.get("key").and_then(Json::as_str).unwrap();
        sock.write_all(
            format!(
                "{{\"op\":\"task-result\",\"name\":\"flaky\",\"submission\":{submission},\
                 \"index\":{index},\"key\":\"{key}\",\"status\":\"failed\",\
                 \"error\":\"synthetic crash\",\"attempts\":1,\"wall_us\":0}}\n"
            )
            .as_bytes(),
        )
        .unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        let reply = Json::parse(reply.trim()).unwrap();
        assert_eq!(reply.get("accepted"), Some(&Json::Bool(true)), "{reply:?}");
    }

    // A healthy worker gets the third lease and the sweep converges.
    let w = WorkerOptions {
        coordinator: addr.clone(),
        name: "healthy".to_owned(),
        cache_dir: scratch("infra-vs-exec-w"),
        cache: CacheMode::Off,
        ..WorkerOptions::default()
    };
    let healthy = std::thread::spawn(move || run_worker(&w).unwrap());

    let reply = client.wait_result(job, Duration::from_secs(300)).unwrap();
    let rows = reply.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(
        rows[0].get("status").and_then(Json::as_str),
        Some("ok"),
        "the task survived one infra loss AND one execution failure: {}",
        rows[0].dump()
    );

    let stats = client.stats().unwrap();
    let counter = |name: &str| {
        stats
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    assert!(counter("tasks_requeued") >= 1, "infra loss was requeued");
    assert!(counter("tasks_retried") >= 1, "exec failure was retried");

    client.shutdown().unwrap();
    healthy.join().unwrap();
    handle.join();
}

/// Resubmitting the same sweep hits the warm result cache: zero new
/// simulations, instant completion, and the identical report.
#[test]
fn warm_resubmission_skips_all_simulation() {
    let handle = server::start(opts("warm")).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();

    let (cold_id, _) = client.submit(SWEEP_SPEC, "c", 0).unwrap();
    let cold = client
        .wait_result(cold_id, Duration::from_secs(300))
        .unwrap();

    let (warm_id, _) = client.submit(SWEEP_SPEC, "c", 0).unwrap();
    let warm = client
        .wait_result(warm_id, Duration::from_secs(300))
        .unwrap();

    let cold_rows = cold.get("rows").and_then(Json::as_arr).unwrap();
    let warm_rows = warm.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(cold_rows.len(), warm_rows.len());
    for (a, b) in cold_rows.iter().zip(warm_rows) {
        assert_eq!(prediction_fields(a), prediction_fields(b));
        assert_eq!(
            b.get("status").and_then(Json::as_str),
            Some("cached"),
            "warm rows are served from memory"
        );
    }

    let stats = client.stats().unwrap();
    let warm_hits = stats
        .get("counters")
        .and_then(|c| c.get("warm_submit_hits"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    assert_eq!(warm_hits, 8, "every resubmitted task was judged warm");

    client.shutdown().unwrap();
    handle.join();
}

/// Two clients: a flood from one must not starve a single run from the
/// other, and priorities order work within a client.
#[test]
fn status_list_cancel_and_fairness() {
    let mut o = opts("lifecycle");
    o.local_slots = Some(1); // serialize execution so ordering is observable
    let handle = server::start(o).unwrap();
    let addr = handle.addr().to_string();

    let mut alice = ServeClient::connect(&addr).unwrap();
    let mut bob = ServeClient::connect(&addr).unwrap();
    assert_eq!(alice.ping().unwrap(), 2);

    let flood_spec = "name = flood\nworkload = nw\nscale = tiny\npreset = swift-sim-basic\nscheduler = gto, lrr, two_level\n";
    let (flood, flood_tasks) = alice.submit(flood_spec, "alice", 0).unwrap();
    assert_eq!(flood_tasks, 3);
    let single_spec = "name = single\nworkload = bfs\nscale = tiny\npreset = swift-sim-memory\n";
    let (single, _) = bob.submit(single_spec, "bob", 5).unwrap();

    // Bob's single run completes long before Alice's flood would if the
    // scheduler were FIFO; with round-robin it is dispatched second.
    bob.wait_result(single, Duration::from_secs(300)).unwrap();
    let flood_status = alice.status(flood).unwrap();
    let state = flood_status.get("state").and_then(Json::as_str).unwrap();
    assert!(
        state == "queued" || state == "running" || state == "done",
        "sane state: {state}"
    );

    // list sees both submissions with their clients.
    let listed = alice
        .request_ok(&Json::obj(vec![("op", Json::str("list"))]))
        .unwrap();
    let jobs = listed.get("jobs").and_then(Json::as_arr).unwrap();
    assert_eq!(jobs.len(), 2);
    let clients: Vec<&str> = jobs
        .iter()
        .filter_map(|j| j.get("client").and_then(Json::as_str))
        .collect();
    assert!(clients.contains(&"alice") && clients.contains(&"bob"));

    // Cancel a fresh submission: queued tasks die, report says cancelled.
    let (doomed, _) = bob.submit(flood_spec, "bob", 0).unwrap();
    bob.cancel(doomed).unwrap();
    let report = bob.wait_result(doomed, Duration::from_secs(300)).unwrap();
    let rows = report.get("rows").and_then(Json::as_arr).unwrap();
    assert!(
        rows.iter()
            .any(|r| r.get("status").and_then(Json::as_str) == Some("cancelled")),
        "cancellation reaches the report: {}",
        report.get("summary").and_then(Json::as_str).unwrap_or("")
    );

    alice.wait_result(flood, Duration::from_secs(300)).unwrap();
    alice.shutdown().unwrap();
    handle.join();
}

/// Graceful drain: a shutdown with queued work finishes that work first,
/// refuses new submissions meanwhile, and the daemon exits idle.
#[test]
fn graceful_drain_finishes_queued_work_and_refuses_new() {
    let mut o = opts("drain");
    o.local_slots = Some(1);
    let handle = server::start(o).unwrap();
    let addr = handle.addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();

    let (job, tasks) = client.submit(SWEEP_SPEC, "c", 0).unwrap();
    assert_eq!(tasks, 8);

    // Park a result wait on its own connection *before* the shutdown: a
    // drain must let in-flight consumers collect their reports (after the
    // daemon exits the results are gone with it).
    let mut waiter = ServeClient::connect(&addr).unwrap();
    let waiting = std::thread::spawn(move || waiter.wait_result(job, Duration::from_secs(300)));
    std::thread::sleep(Duration::from_millis(50)); // let the wait register
    client.shutdown().unwrap();

    // Submissions after the drain began are refused (answered with an
    // error on a live connection, or never served on a post-drain one).
    let refused = client.submit(SWEEP_SPEC, "late", 0);
    assert!(refused.is_err(), "drain refuses new work: {refused:?}");

    // The in-flight sweep still completed, with every row ok.
    let report = waiting.join().unwrap().unwrap();
    let rows = report.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows.len(), 8);
    for row in rows {
        assert_eq!(row.get("status").and_then(Json::as_str), Some("ok"));
    }
    handle.join();
}

/// Malformed requests get protocol errors, not dropped connections, and
/// the daemon keeps serving afterwards.
#[test]
fn protocol_errors_are_answered_not_fatal() {
    let handle = server::start(opts("protocol")).unwrap();
    let addr = handle.addr().to_string();
    let mut client = ServeClient::connect(&addr).unwrap();

    let unknown = client
        .request(&Json::obj(vec![("op", Json::str("frobnicate"))]))
        .unwrap();
    assert_eq!(unknown.get("ok"), Some(&Json::Bool(false)));

    let bad_spec = client
        .request(&Json::obj(vec![
            ("op", Json::str("submit")),
            ("spec", Json::str("workload = doom\nscale = tiny")),
        ]))
        .unwrap();
    assert_eq!(bad_spec.get("ok"), Some(&Json::Bool(false)));
    assert!(bad_spec
        .get("error")
        .and_then(Json::as_str)
        .unwrap()
        .contains("doom"));

    let orphan_result = client
        .request(&Json::obj(vec![("op", Json::str("task-result"))]))
        .unwrap();
    assert_eq!(orphan_result.get("ok"), Some(&Json::Bool(false)));

    // Status of a job that never existed.
    let ghost = client
        .request(&Json::obj(vec![
            ("op", Json::str("status")),
            ("job", Json::int(999)),
        ]))
        .unwrap();
    assert_eq!(ghost.get("ok"), Some(&Json::Bool(false)));

    // The connection and daemon survived all of it.
    assert_eq!(client.ping().unwrap(), 2);
    client.shutdown().unwrap();
    handle.join();
}

/// The stats endpoint reports counters and cache statistics that add up.
#[test]
fn stats_reflect_execution_and_caches() {
    let handle = server::start(opts("stats")).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();

    let spec = "workload = nw\nscale = tiny\npreset = swift-sim-memory\nscheduler = gto, lrr\n";
    let (job, _) = client.submit(spec, "statclient", 0).unwrap();
    client.wait_result(job, Duration::from_secs(300)).unwrap();

    let stats = client.stats().unwrap();
    let counters = stats.get("counters").unwrap();
    let get = |k: &str| counters.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(get("jobs_submitted"), 1);
    assert_eq!(get("tasks_total"), 2);
    assert_eq!(get("tasks_completed"), 2);
    assert_eq!(get("queue_depth"), 0);
    assert_eq!(get("client.statclient.submissions"), 1);
    assert!(stats.get("result_cache").is_some());
    assert!(stats.get("kernel_cache").is_some());

    // The enriched stats of protocol v2: uptime and per-lifecycle-state
    // task counts that add up to the submission.
    assert!(
        stats.get("uptime_us").and_then(Json::as_u64).unwrap_or(0) > 0,
        "uptime is reported"
    );
    let queue = stats.get("queue").expect("stats carry a queue object");
    assert_eq!(queue.get("depth").and_then(Json::as_u64), Some(0));
    let by_state = queue.get("by_state").expect("queue carries by_state");
    let state = |k: &str| by_state.get(k).and_then(Json::as_u64).unwrap_or(0);
    assert_eq!(
        state("completed") + state("cached"),
        2,
        "both tasks reached a terminal state: {}",
        by_state.dump()
    );
    assert_eq!(state("queued") + state("running"), 0);

    client.shutdown().unwrap();
    handle.join();
}

/// The `metrics` op: after a sweep, the Prometheus exposition carries the
/// latency histograms with non-empty buckets, the gauges, and the labeled
/// per-client counters; the JSON view agrees.
#[test]
fn metrics_exposition_has_live_histograms_after_a_sweep() {
    let handle = server::start(opts("metrics")).unwrap();
    let mut client = ServeClient::connect(&handle.addr().to_string()).unwrap();

    let (job, tasks) = client.submit(SWEEP_SPEC, "mclient", 0).unwrap();
    assert_eq!(tasks, 8);
    client.wait_result(job, Duration::from_secs(300)).unwrap();

    let (text, json) = client.metrics().unwrap();
    // Histograms: every fresh task simulated, so simulate_us has samples
    // and cumulative buckets ending in +Inf.
    assert!(
        text.contains("# TYPE swiftsim_simulate_us histogram"),
        "histogram TYPE line present:\n{text}"
    );
    assert!(
        text.contains("swiftsim_simulate_us_bucket{le="),
        "non-empty buckets exposed:\n{text}"
    );
    assert!(text.contains("swiftsim_simulate_us_bucket{le=\"+Inf\"}"));
    assert!(text.contains("swiftsim_queue_wait_us_count"));
    assert!(text.contains("# TYPE swiftsim_queue_depth gauge"));
    assert!(
        text.contains("swiftsim_client_submissions{client=\"mclient\"} 1"),
        "labeled counter exposed:\n{text}"
    );

    let hists = json.get("histograms").expect("JSON view has histograms");
    let simulate = hists.get("simulate_us").expect("simulate_us histogram");
    assert_eq!(simulate.get("count").and_then(Json::as_u64), Some(8));
    assert!(simulate.get("p99").and_then(Json::as_u64).unwrap_or(0) > 0);
    let queue_wait = hists.get("queue_wait_us").expect("queue_wait histogram");
    assert!(queue_wait.get("count").and_then(Json::as_u64).unwrap_or(0) >= 8);

    // The flight recorder saw the whole lifecycle; dump-events returns it.
    let events = client.dump_events().unwrap();
    assert_eq!(events.get("enabled"), Some(&Json::Bool(true)));
    let kinds: Vec<&str> = events
        .get("events")
        .and_then(Json::as_arr)
        .unwrap()
        .iter()
        .filter_map(|e| e.get("event").and_then(Json::as_str))
        .collect();
    assert!(kinds.contains(&"submit"), "{kinds:?}");
    assert!(kinds.contains(&"dispatch"), "{kinds:?}");
    assert!(kinds.contains(&"task-done"), "{kinds:?}");

    client.shutdown().unwrap();
    handle.join();
}

/// The tentpole acceptance: a remote-worker campaign with `trace_out`
/// produces ONE merged Perfetto trace holding the coordinator's queue and
/// executor spans (pid 1) AND the worker's own profiler frames (its own
/// pid), all tagged with consistent run/task ids.
#[test]
fn remote_sweep_merges_one_trace_with_worker_tracks() {
    let trace_path = std::env::temp_dir().join(format!(
        "swiftsim-serve-e2e-trace-{}.json",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&trace_path);
    let mut o = opts("traced");
    o.local_slots = Some(0); // all simulation on the remote worker
    o.trace_out = Some(trace_path.clone());
    let handle = server::start(o).unwrap();
    let addr = handle.addr().to_string();

    let w = WorkerOptions {
        coordinator: addr.clone(),
        name: "tracer".to_owned(),
        cache_dir: scratch("traced-w"),
        cache: CacheMode::Off,
        ..WorkerOptions::default()
    };
    let worker = std::thread::spawn(move || run_worker(&w).unwrap());

    let mut client = ServeClient::connect(&addr).unwrap();
    let spec = "name = traced\nworkload = nw\nscale = tiny\npreset = swift-sim-memory\nscheduler = gto, lrr\n";
    let (job, tasks) = client.submit(spec, "c", 0).unwrap();
    assert_eq!(tasks, 2);
    client.wait_result(job, Duration::from_secs(300)).unwrap();
    client.shutdown().unwrap();
    worker.join().unwrap();
    handle.join(); // trace is written at the end of the drain

    let doc = Json::parse(&std::fs::read_to_string(&trace_path).unwrap()).unwrap();
    let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
    let ctx = |e: &Json| {
        let run = e
            .get("args")
            .and_then(|a| a.get("run"))
            .and_then(Json::as_u64);
        let task = e
            .get("args")
            .and_then(|a| a.get("task"))
            .and_then(Json::as_u64);
        run.zip(task)
    };
    // Coordinator spans: queue + executor rows on pid 1, with run/task.
    let coord: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(1))
        .filter_map(&ctx)
        .collect();
    // Worker frames: X events on a pid other than 1, same run/task args.
    let worker_spans: Vec<(u64, u64)> = events
        .iter()
        .filter(|e| {
            e.get("ph").and_then(Json::as_str) == Some("X")
                && e.get("pid").and_then(Json::as_u64).unwrap_or(1) != 1
        })
        .filter_map(&ctx)
        .collect();
    assert!(!coord.is_empty(), "coordinator spans carry trace context");
    assert!(
        !worker_spans.is_empty(),
        "worker frames carry trace context"
    );
    for id in &worker_spans {
        assert!(
            coord.contains(id),
            "worker span {id:?} matches a coordinator span; coordinator saw {coord:?}"
        );
    }
    // Both tasks of the sweep appear.
    assert!(coord.iter().any(|(_, t)| *t == 0) && coord.iter().any(|(_, t)| *t == 1));
    // The worker's process row is named after its executor identity.
    assert!(
        events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("name").and_then(Json::as_str) == Some("process_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    .is_some_and(|n| n.contains("tracer"))
        }),
        "worker process is named in the trace"
    );
    let _ = std::fs::remove_file(&trace_path);
}

/// Worker loss beyond the loss budget dumps the flight recorder as JSONL
/// naming the run and task ids — the post-mortem artifact.
#[test]
fn exhausted_loss_budget_dumps_flight_recorder_jsonl() {
    let events_path = std::env::temp_dir().join(format!(
        "swiftsim-serve-e2e-events-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&events_path);
    let mut o = opts("flightdump");
    o.local_slots = Some(0);
    o.max_worker_losses = 0; // first loss exhausts the budget
    o.events_out = Some(events_path.clone());
    let handle = server::start(o).unwrap();
    let addr = handle.addr().to_string();

    let mut client = ServeClient::connect(&addr).unwrap();
    let (job, _) = client
        .submit(
            "name = doomed\nworkload = nw\nscale = tiny\npreset = swift-sim-memory\nscheduler = gto\n",
            "c",
            0,
        )
        .unwrap();

    // A worker claims the task and dies. With a zero loss budget the task
    // fails instead of requeueing, which must trigger the dump.
    {
        let mut dying = TcpStream::connect(&addr).unwrap();
        let mut reader = BufReader::new(dying.try_clone().unwrap());
        let mut say = |line: String| {
            dying.write_all(line.as_bytes()).unwrap();
            dying.write_all(b"\n").unwrap();
            let mut reply = String::new();
            reader.read_line(&mut reply).unwrap();
            Json::parse(reply.trim()).unwrap()
        };
        let hello = say("{\"op\":\"worker-hello\",\"name\":\"doomed\",\"version\":2}".to_owned());
        assert_eq!(hello.get("ok"), Some(&Json::Bool(true)));
        let deadline = std::time::Instant::now() + Duration::from_secs(60);
        loop {
            let reply = say("{\"op\":\"task-request\",\"name\":\"doomed\"}".to_owned());
            if !matches!(reply.get("task"), Some(Json::Null) | None) {
                break;
            }
            assert!(std::time::Instant::now() < deadline, "never got a lease");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    // The loss fails the task, so the submission reaches a terminal state.
    let report = client.wait_result(job, Duration::from_secs(300)).unwrap();
    let rows = report.get("rows").and_then(Json::as_arr).unwrap();
    assert_eq!(rows[0].get("status").and_then(Json::as_str), Some("failed"));

    // The dump exists, every line parses, and the lost task is named by
    // run and task id. (The task turns terminal a moment before the dump
    // is written, so give the file a beat to appear.)
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    let dump = loop {
        match std::fs::read_to_string(&events_path) {
            Ok(d) if !d.is_empty() => break d,
            _ if std::time::Instant::now() >= deadline => panic!("flight recorder never dumped"),
            _ => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    let events: Vec<Json> = dump
        .lines()
        .map(|l| Json::parse(l).expect("JSONL line parses"))
        .collect();
    assert!(!events.is_empty());
    let loss = events
        .iter()
        .find(|e| {
            e.get("event").and_then(Json::as_str) == Some("worker-loss-requeue")
                && e.get("requeued") == Some(&Json::Bool(false))
        })
        .expect("the exhausted loss is recorded");
    assert_eq!(loss.get("run").and_then(Json::as_u64), Some(job));
    assert_eq!(loss.get("task").and_then(Json::as_u64), Some(0));
    assert!(
        loss.get("executor")
            .and_then(Json::as_str)
            .is_some_and(|e| e.contains("doomed")),
        "{}",
        loss.dump()
    );
    // Earlier lifecycle events are in the same dump (submit → dispatch).
    assert!(events
        .iter()
        .any(|e| e.get("event").and_then(Json::as_str) == Some("submit")));

    client.shutdown().unwrap();
    handle.join();
    let _ = std::fs::remove_file(&events_path);
}
